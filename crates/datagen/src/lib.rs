//! # aod-datagen — synthetic workloads shaped like the paper's datasets
//!
//! The paper evaluates on two real datasets (BTS `flight`, 1M×35; NC
//! `ncvoter`, 5M×30) that cannot be redistributed with this repository.
//! This crate provides deterministic generators whose outputs have the same
//! *structural* properties the algorithms are sensitive to — class-size
//! distributions, monotone correlations, hierarchies, and controlled dirt —
//! including the specific approximate OCs the paper calls out by name
//! (`arrDelay ~ lateAircraftDelay` ≈ 9.5%, `originAirport ~ IATACode` ≈ 8%,
//! `municipalityAbbrv ~ municipalityDesc`, `streetAddress ~ mailAddress` ≈
//! 18%). See `DESIGN.md` §5 for the substitution rationale.
//!
//! * [`Generator`] / [`ColumnKind`] — the composable column model.
//! * [`flight::flight`] and [`ncvoter::ncvoter`] — the two presets.
//! * [`dirty`] — error injectors (concatenated zeros, transpositions,
//!   nulls) for demonstrating cleaning workflows on any [`aod_table::Table`].
//!
//! ```
//! use aod_datagen::flight;
//!
//! let table = flight::flight(42).ranked(1_000);
//! assert_eq!(table.n_cols(), flight::N_COLS);
//! assert_eq!(table.n_rows(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dirty;
pub mod flight;
mod generic;
pub mod ncvoter;

pub use generic::{ColumnKind, ColumnSpec, Generator};
