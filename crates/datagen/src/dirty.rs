//! Error injectors for [`Table`]s.
//!
//! These reproduce, at scale, the kinds of dirt the paper's motivating
//! example shows in Table 1: the `perc` column contains "a concatenated
//! zero in some rows due to data entry errors (e.g., 10% instead of 1%)".
//! Injecting such errors into clean data lets examples and experiments
//! demonstrate that exact OD discovery loses dependencies a single bad cell
//! breaks, while AOD discovery retains them.

use aod_table::{Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplies a fraction of a numeric column's values by 10 — the paper's
/// "concatenated zero" data-entry error. Returns the affected row ids.
pub fn inject_concatenated_zero(table: &mut Table, col: usize, rate: f64, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut affected = Vec::new();
    let column = table.column_mut(col);
    for (row, v) in column.iter_mut().enumerate() {
        if rng.gen_bool(rate.clamp(0.0, 1.0)) {
            match v {
                Value::Int(i) => {
                    *i = i.saturating_mul(10);
                    affected.push(row);
                }
                Value::Float(f) => {
                    *f *= 10.0;
                    affected.push(row);
                }
                _ => {}
            }
        }
    }
    affected
}

/// Swaps the values of random row pairs within one column — classic
/// transposition noise that creates swaps w.r.t. any OC the column takes
/// part in. Returns the affected row ids.
pub fn inject_transpositions(table: &mut Table, col: usize, rate: f64, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = table.n_rows();
    let column = table.column_mut(col);
    let n_pairs = ((n as f64) * rate.clamp(0.0, 1.0) / 2.0).round() as usize;
    let mut affected = Vec::new();
    for _ in 0..n_pairs {
        if n < 2 {
            break;
        }
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            column.swap(i, j);
            affected.push(i);
            affected.push(j);
        }
    }
    affected.sort_unstable();
    affected.dedup();
    affected
}

/// Replaces a fraction of a column's values with nulls. Returns the
/// affected row ids.
pub fn inject_nulls(table: &mut Table, col: usize, rate: f64, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut affected = Vec::new();
    let column = table.column_mut(col);
    for (row, v) in column.iter_mut().enumerate() {
        if rng.gen_bool(rate.clamp(0.0, 1.0)) {
            *v = Value::Null;
            affected.push(row);
        }
    }
    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_table::employee_table;

    #[test]
    fn concatenated_zero_scales_ints() {
        let mut t = employee_table();
        let before: Vec<Value> = t.column(5).to_vec(); // tax
        let affected = inject_concatenated_zero(&mut t, 5, 0.5, 42);
        assert!(!affected.is_empty());
        for &row in &affected {
            let expected = match &before[row] {
                Value::Int(i) => Value::Int(i * 10),
                _ => unreachable!(),
            };
            assert_eq!(t.value(row, 5), &expected);
        }
        // Unaffected rows untouched.
        for (row, prev) in before.iter().enumerate() {
            if !affected.contains(&row) {
                assert_eq!(t.value(row, 5), prev);
            }
        }
    }

    #[test]
    fn concatenated_zero_skips_strings() {
        let mut t = employee_table();
        let before: Vec<Value> = t.column(0).to_vec(); // pos (strings)
        let affected = inject_concatenated_zero(&mut t, 0, 1.0, 1);
        assert!(affected.is_empty());
        assert_eq!(t.column(0), before.as_slice());
    }

    #[test]
    fn transpositions_permute_multiset() {
        let mut t = employee_table();
        let mut before: Vec<Value> = t.column(2).to_vec();
        inject_transpositions(&mut t, 2, 0.8, 3);
        let mut after: Vec<Value> = t.column(2).to_vec();
        before.sort();
        after.sort();
        assert_eq!(before, after); // same values, different order
    }

    #[test]
    fn nulls_are_injected_at_roughly_the_rate() {
        let mut t = employee_table();
        let affected = inject_nulls(&mut t, 6, 1.0, 9);
        assert_eq!(affected.len(), 9);
        assert!(t.column(6).iter().all(Value::is_null));
    }

    #[test]
    fn injectors_are_deterministic() {
        let mut t1 = employee_table();
        let mut t2 = employee_table();
        let a1 = inject_concatenated_zero(&mut t1, 5, 0.4, 7);
        let a2 = inject_concatenated_zero(&mut t2, 5, 0.4, 7);
        assert_eq!(a1, a2);
        assert_eq!(t1.column(5), t2.column(5));
    }
}
