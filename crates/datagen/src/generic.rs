//! Configurable synthetic table generator.
//!
//! The paper evaluates on two real CSV dumps (BTS `flight`, NC `ncvoter`)
//! that are not redistributable here. What the algorithms are sensitive to
//! is *structure*, not provenance:
//!
//! * equivalence-class size distributions per context (drives partition and
//!   validation cost),
//! * monotone correlations between columns (drives how many OCs/ODs exist
//!   and at which lattice levels),
//! * controlled dirt rates (drives the difference between exact and
//!   approximate discovery).
//!
//! [`Generator`] builds tables from a list of [`ColumnKind`]s that express
//! exactly those properties; the `flight`/`ncvoter` presets compose them
//! into schemas shaped like the paper's datasets (see `DESIGN.md` §5).

use aod_table::{RankedTable, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How one column's values are produced.
#[derive(Debug, Clone)]
pub enum ColumnKind {
    /// A unique row identifier in random order (a key; no non-trivial
    /// dependencies into or out of it except through keys).
    Key,
    /// Uniform categorical values in `0..cardinality`.
    Uniform {
        /// Number of distinct values.
        cardinality: u32,
    },
    /// Skewed (power-law) categorical values in `0..cardinality`:
    /// `P(v) ∝ (v+1)^-s`. Produces the few-large-many-small class
    /// distributions typical of real categorical columns.
    Zipf {
        /// Number of distinct values.
        cardinality: u32,
        /// Skew exponent (`1.0` is classic Zipf; larger is more skewed).
        s: f64,
    },
    /// A strictly monotone transform of another column, with a fraction of
    /// rows replaced by uniform noise. Creates the OC
    /// `source ~ this` with approximation factor ≈ `noise_rate`
    /// (`noise_rate = 0` makes it exact).
    MonotoneOf {
        /// Index of the source column (must precede this one).
        source: usize,
        /// Fraction of rows whose value is replaced by noise.
        noise_rate: f64,
    },
    /// The source column coarsened into `buckets` buckets by integer
    /// division — a monotone *many-to-one* map, so both the OC
    /// `source ~ this` and the OFD `{source}: [] |-> this` hold, i.e. the
    /// OD `source |-> this` (like `sal |-> taxGrp` in Table 1). Noise is
    /// injected at `noise_rate`.
    CoarsenOf {
        /// Index of the source column (must precede this one).
        source: usize,
        /// Number of buckets (distinct output values).
        buckets: u32,
        /// Fraction of rows whose value is replaced by noise.
        noise_rate: f64,
    },
    /// A random bijective re-labelling of another column: the FDs
    /// `source -> this` and `this -> source` hold but the *order* is
    /// scrambled (an FD without an OC — distinguishes the two discovery
    /// problems).
    RelabelOf {
        /// Index of the source column (must precede this one).
        source: usize,
        /// Cardinality of the source column's domain (upper bound is fine).
        cardinality: u32,
    },
    /// A noisy copy: equal to the source except on a `noise_rate` fraction
    /// of rows (models near-duplicate columns like street vs. mail address).
    NoisyCopyOf {
        /// Index of the source column (must precede this one).
        source: usize,
        /// Fraction of rows replaced by noise.
        noise_rate: f64,
    },
    /// A refinement of a parent column: `parent * fanout + uniform(fanout)`.
    /// Partition-wise this behaves like month-within-year; the OD
    /// `this |-> parent` holds exactly.
    RefineOf {
        /// Index of the parent column (must precede this one).
        parent: usize,
        /// Children per parent value.
        fanout: u32,
    },
    /// The paper's "concatenated zero" data-entry error (Table 1's `perc`
    /// column): a monotone copy of the source whose value is multiplied by
    /// `factor` on an `error_rate` fraction of rows. The scaled values form
    /// a second, overlapping increasing run — exactly the structure on
    /// which the iterative validator's greedy removal overestimates
    /// (Example 3.1).
    ScaledErrorOf {
        /// Index of the source column (must precede this one).
        source: usize,
        /// Fraction of rows with the error.
        error_rate: f64,
        /// Multiplier applied on erroneous rows (10 = concatenated zero).
        factor: u32,
    },
}

/// A named column specification.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name (becomes the schema name).
    pub name: String,
    /// Value generator.
    pub kind: ColumnKind,
}

impl ColumnSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: ColumnKind) -> ColumnSpec {
        ColumnSpec {
            name: name.into(),
            kind,
        }
    }
}

/// A deterministic synthetic table generator.
#[derive(Debug, Clone)]
pub struct Generator {
    specs: Vec<ColumnSpec>,
    seed: u64,
}

impl Generator {
    /// Builds a generator from column specs and an RNG seed.
    ///
    /// # Panics
    /// If a derived column references a source at or after its own position.
    pub fn new(specs: Vec<ColumnSpec>, seed: u64) -> Generator {
        for (i, spec) in specs.iter().enumerate() {
            let source = match spec.kind {
                ColumnKind::MonotoneOf { source, .. }
                | ColumnKind::CoarsenOf { source, .. }
                | ColumnKind::RelabelOf { source, .. }
                | ColumnKind::NoisyCopyOf { source, .. }
                | ColumnKind::ScaledErrorOf { source, .. }
                | ColumnKind::RefineOf { parent: source, .. } => Some(source),
                _ => None,
            };
            if let Some(s) = source {
                assert!(
                    s < i,
                    "column {i} ({}) references source {s} not before it",
                    spec.name
                );
            }
        }
        Generator { specs, seed }
    }

    /// Number of columns this generator produces.
    pub fn n_cols(&self) -> usize {
        self.specs.len()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    /// Generates raw `u32` columns (the fast path used by benchmarks).
    pub fn generate_u32(&self, rows: usize) -> Vec<Vec<u32>> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut cols: Vec<Vec<u32>> = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let col = match spec.kind {
                ColumnKind::Key => {
                    let mut ids: Vec<u32> = (0..rows as u32).collect();
                    shuffle(&mut ids, &mut rng);
                    ids
                }
                ColumnKind::Uniform { cardinality } => {
                    let card = cardinality.max(1);
                    (0..rows).map(|_| rng.gen_range(0..card)).collect()
                }
                ColumnKind::Zipf { cardinality, s } => {
                    let sampler = ZipfSampler::new(cardinality.max(1), s);
                    (0..rows).map(|_| sampler.sample(&mut rng)).collect()
                }
                ColumnKind::MonotoneOf { source, noise_rate } => {
                    let src = &cols[source];
                    let max = src.iter().copied().max().unwrap_or(0);
                    src.iter()
                        .map(|&v| {
                            if rng.gen_bool(noise_rate.clamp(0.0, 1.0)) {
                                // Noise spans the transformed domain so it can
                                // land on either side of the clean values.
                                rng.gen_range(0..=monotone(max).max(1))
                            } else {
                                monotone(v)
                            }
                        })
                        .collect()
                }
                ColumnKind::CoarsenOf {
                    source,
                    buckets,
                    noise_rate,
                } => {
                    let src = &cols[source];
                    let max = src.iter().copied().max().unwrap_or(0);
                    let div = (max / buckets.max(1)).max(1);
                    src.iter()
                        .map(|&v| {
                            if rng.gen_bool(noise_rate.clamp(0.0, 1.0)) {
                                rng.gen_range(0..buckets.max(1))
                            } else {
                                v / div
                            }
                        })
                        .collect()
                }
                ColumnKind::RelabelOf {
                    source,
                    cardinality,
                } => {
                    let mut perm: Vec<u32> = (0..cardinality.max(1)).collect();
                    shuffle(&mut perm, &mut rng);
                    cols[source]
                        .iter()
                        .map(|&v| perm[(v as usize) % perm.len()])
                        .collect()
                }
                ColumnKind::NoisyCopyOf { source, noise_rate } => {
                    let src = &cols[source];
                    let max = src.iter().copied().max().unwrap_or(0);
                    src.iter()
                        .map(|&v| {
                            if rng.gen_bool(noise_rate.clamp(0.0, 1.0)) {
                                rng.gen_range(0..=max.max(1))
                            } else {
                                v
                            }
                        })
                        .collect()
                }
                ColumnKind::RefineOf { parent, fanout } => {
                    let f = fanout.max(1);
                    cols[parent]
                        .iter()
                        .map(|&v| v * f + rng.gen_range(0..f))
                        .collect()
                }
                ColumnKind::ScaledErrorOf {
                    source,
                    error_rate,
                    factor,
                } => {
                    let src = &cols[source];
                    src.iter()
                        .map(|&v| {
                            let clean = monotone(v);
                            if rng.gen_bool(error_rate.clamp(0.0, 1.0)) {
                                clean.saturating_mul(factor.max(2))
                            } else {
                                clean
                            }
                        })
                        .collect()
                }
            };
            cols.push(col);
        }
        cols
    }

    /// Generates a [`RankedTable`] directly (densified ranks).
    pub fn ranked(&self, rows: usize) -> RankedTable {
        RankedTable::from_u32_columns(self.generate_u32(rows))
    }

    /// Generates a [`Table`] of integer [`Value`]s with the spec's column
    /// names (for examples, the CLI and CSV export).
    pub fn table(&self, rows: usize) -> Table {
        let cols = self.generate_u32(rows);
        let names = self.names();
        let columns: Vec<Vec<Value>> = cols
            .into_iter()
            .map(|c| c.into_iter().map(|v| Value::Int(v as i64)).collect())
            .collect();
        let schema = aod_table::Schema::from_names(&names).expect("spec names are unique");
        let mut t = Table::new(schema, columns).expect("columns are rectangular");
        t.infer_types();
        t
    }
}

/// The strictly monotone transform used by `MonotoneOf`
/// (affine, so it is order-preserving and collision-free).
#[inline]
fn monotone(v: u32) -> u32 {
    v.saturating_mul(3).saturating_add(11)
}

/// Fisher–Yates shuffle (avoids depending on `rand`'s `SliceRandom` trait
/// so the crate keeps a minimal feature surface).
fn shuffle<T>(data: &mut [T], rng: &mut SmallRng) {
    for i in (1..data.len()).rev() {
        let j = rng.gen_range(0..=i);
        data.swap(i, j);
    }
}

/// Inverse-CDF sampler for a discrete power law `P(v) ∝ (v+1)^{-s}`.
#[derive(Debug, Clone)]
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(cardinality: u32, s: f64) -> ZipfSampler {
        let mut cumulative = Vec::with_capacity(cardinality as usize);
        let mut total = 0.0;
        for v in 0..cardinality {
            total += 1.0 / ((v as f64 + 1.0).powf(s));
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut SmallRng) -> u32 {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_partition::Partition;
    use aod_validate::{list_od_holds, OcValidator};

    fn gen(specs: Vec<ColumnSpec>) -> Generator {
        Generator::new(specs, 42)
    }

    #[test]
    fn key_column_is_a_permutation() {
        let g = gen(vec![ColumnSpec::new("id", ColumnKind::Key)]);
        let mut col = g.generate_u32(100).pop().unwrap();
        col.sort_unstable();
        assert_eq!(col, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn deterministic_across_calls() {
        let specs = vec![
            ColumnSpec::new("a", ColumnKind::Uniform { cardinality: 10 }),
            ColumnSpec::new(
                "b",
                ColumnKind::MonotoneOf {
                    source: 0,
                    noise_rate: 0.2,
                },
            ),
        ];
        let g1 = Generator::new(specs.clone(), 7);
        let g2 = Generator::new(specs, 7);
        assert_eq!(g1.generate_u32(50), g2.generate_u32(50));
    }

    #[test]
    fn different_seeds_differ() {
        let specs = vec![ColumnSpec::new(
            "a",
            ColumnKind::Uniform { cardinality: 1000 },
        )];
        let g1 = Generator::new(specs.clone(), 1);
        let g2 = Generator::new(specs, 2);
        assert_ne!(g1.generate_u32(50), g2.generate_u32(50));
    }

    #[test]
    fn clean_monotone_column_is_order_compatible() {
        let g = gen(vec![
            ColumnSpec::new("a", ColumnKind::Uniform { cardinality: 50 }),
            ColumnSpec::new(
                "b",
                ColumnKind::MonotoneOf {
                    source: 0,
                    noise_rate: 0.0,
                },
            ),
        ]);
        let t = g.ranked(500);
        let mut v = OcValidator::new();
        assert!(v.exact_oc_holds(
            &Partition::unit(500),
            t.column(0).ranks(),
            t.column(1).ranks()
        ));
    }

    #[test]
    fn noisy_monotone_column_has_roughly_matching_factor() {
        let g = gen(vec![
            ColumnSpec::new("a", ColumnKind::Uniform { cardinality: 1000 }),
            ColumnSpec::new(
                "b",
                ColumnKind::MonotoneOf {
                    source: 0,
                    noise_rate: 0.10,
                },
            ),
        ]);
        let t = g.ranked(2000);
        let mut v = OcValidator::new();
        let removed = v
            .min_removal_optimal(
                &Partition::unit(2000),
                t.column(0).ranks(),
                t.column(1).ranks(),
                usize::MAX,
            )
            .unwrap();
        let factor = removed as f64 / 2000.0;
        // A noise flip doesn't always create a swap (it can land in order),
        // so the factor is below the noise rate but near it.
        assert!(factor > 0.02 && factor <= 0.12, "factor {factor}");
    }

    #[test]
    fn coarsen_creates_exact_od() {
        let g = gen(vec![
            ColumnSpec::new(
                "sal",
                ColumnKind::Uniform {
                    cardinality: 10_000,
                },
            ),
            ColumnSpec::new(
                "taxGrp",
                ColumnKind::CoarsenOf {
                    source: 0,
                    buckets: 5,
                    noise_rate: 0.0,
                },
            ),
        ]);
        let t = g.ranked(1000);
        assert!(list_od_holds(&t, &[0], &[1]));
        assert!(t.column(1).n_distinct() <= 6);
    }

    #[test]
    fn refine_creates_exact_od_to_parent() {
        let g = gen(vec![
            ColumnSpec::new("year", ColumnKind::Uniform { cardinality: 5 }),
            ColumnSpec::new(
                "month",
                ColumnKind::RefineOf {
                    parent: 0,
                    fanout: 12,
                },
            ),
        ]);
        let t = g.ranked(600);
        assert!(list_od_holds(&t, &[1], &[0]));
    }

    #[test]
    fn relabel_keeps_fd_but_breaks_order() {
        let g = gen(vec![
            ColumnSpec::new("code", ColumnKind::Uniform { cardinality: 200 }),
            ColumnSpec::new(
                "label",
                ColumnKind::RelabelOf {
                    source: 0,
                    cardinality: 200,
                },
            ),
        ]);
        let t = g.ranked(2000);
        // FD both ways:
        let p = Partition::from_ranks(t.column(0).ranks(), t.column(0).n_distinct());
        assert!(p.fd_holds(t.column(1).ranks(), t.column(1).n_distinct()));
        // but with 200 shuffled labels the OC is all but surely broken:
        let mut v = OcValidator::new();
        assert!(!v.exact_oc_holds(
            &Partition::unit(2000),
            t.column(0).ranks(),
            t.column(1).ranks()
        ));
    }

    #[test]
    fn zipf_is_skewed() {
        let g = gen(vec![ColumnSpec::new(
            "z",
            ColumnKind::Zipf {
                cardinality: 100,
                s: 1.5,
            },
        )]);
        let col = g.generate_u32(10_000).pop().unwrap();
        let zero_share = col.iter().filter(|&&v| v == 0).count() as f64 / 10_000.0;
        // With s = 1.5 the head value should dominate clearly.
        assert!(zero_share > 0.2, "share {zero_share}");
        assert!(col.iter().all(|&v| v < 100));
    }

    #[test]
    fn noisy_copy_mostly_equals_source() {
        let g = gen(vec![
            ColumnSpec::new("street", ColumnKind::Uniform { cardinality: 500 }),
            ColumnSpec::new(
                "mail",
                ColumnKind::NoisyCopyOf {
                    source: 0,
                    noise_rate: 0.18,
                },
            ),
        ]);
        let cols = g.generate_u32(5000);
        let equal = cols[0].iter().zip(&cols[1]).filter(|(a, b)| a == b).count() as f64 / 5000.0;
        assert!(equal > 0.78 && equal < 0.88, "equal share {equal}");
    }

    #[test]
    fn table_conversion_has_names_and_types() {
        let g = gen(vec![
            ColumnSpec::new("x", ColumnKind::Uniform { cardinality: 4 }),
            ColumnSpec::new(
                "y",
                ColumnKind::MonotoneOf {
                    source: 0,
                    noise_rate: 0.0,
                },
            ),
        ]);
        let t = g.table(10);
        assert_eq!(t.schema().names(), vec!["x", "y"]);
        assert_eq!(t.n_rows(), 10);
    }

    #[test]
    fn scaled_error_triggers_iterative_overestimation() {
        // The whole point of ScaledErrorOf: on this structure the greedy
        // max-swap heuristic (Algorithm 1) removes more tuples than the
        // minimal removal set found by the LNDS validator (Algorithm 2).
        let g = gen(vec![
            ColumnSpec::new("sal", ColumnKind::Uniform { cardinality: 500 }),
            ColumnSpec::new(
                "tax",
                ColumnKind::ScaledErrorOf {
                    source: 0,
                    error_rate: 0.1,
                    factor: 10,
                },
            ),
        ]);
        let t = g.ranked(800);
        let ctx = Partition::unit(800);
        let mut v = OcValidator::new();
        let opt = v
            .min_removal_optimal(&ctx, t.column(0).ranks(), t.column(1).ranks(), usize::MAX)
            .unwrap();
        let it = v
            .min_removal_iterative(&ctx, t.column(0).ranks(), t.column(1).ranks(), usize::MAX)
            .unwrap();
        assert!(opt > 0);
        assert!(it >= opt);
    }

    #[test]
    #[should_panic(expected = "references source")]
    fn forward_references_rejected() {
        Generator::new(
            vec![ColumnSpec::new(
                "bad",
                ColumnKind::MonotoneOf {
                    source: 0,
                    noise_rate: 0.0,
                },
            )],
            1,
        );
    }
}
