//! Pluggable OC-validation backends for the discovery engine.
//!
//! The level-wise driver in `aod-core` does not care *how* a candidate
//! `X: A ~ B` is validated — only that some algorithm reports the size of a
//! removal set within a budget. [`OcValidatorBackend`] captures exactly that
//! contract, so the three paper configurations (exact scan, **Algorithm 2**
//! optimal LNDS, **Algorithm 1** iterative baseline) become interchangeable
//! values, and future backends (parallel, sampled, GPU) plug into the
//! driver without touching it.
//!
//! ```
//! use aod_partition::Partition;
//! use aod_validate::{strategy_backend, AocStrategy, OcValidatorBackend};
//!
//! let mut backend = strategy_backend(AocStrategy::Optimal);
//! let ctx = Partition::unit(4);
//! // B = [0, 2, 1, 3] against ascending A: one removal repairs the OC.
//! let removed = backend.min_removal(&ctx, &[0, 1, 2, 3], &[0, 2, 1, 3], usize::MAX);
//! assert_eq!(removed, Some(1));
//! assert_eq!(backend.name(), "optimal");
//! ```

use crate::oc::OcValidator;
use crate::sampled::{presample_with_scratch, SampleScratch, SampleVerdict};
use crate::AocStrategy;
use aod_partition::Partition;

/// A strategy object validating order-compatibility candidates.
///
/// Implementations are stateful (they may keep scratch buffers across
/// candidates — the discovery engine reuses one backend for the entire
/// run) and must be [`Send`] so sessions can migrate across threads.
///
/// ## Threading contract
///
/// The parallel per-level validator does **not** share one backend across
/// workers (that would serialise the hot path behind a lock). Instead it
/// calls [`fork`](OcValidatorBackend::fork) once per worker thread at the
/// start of each level and hands every worker its own instance. A fork
/// must therefore behave *identically* to its parent on every
/// `min_removal` call — same algorithm, same verdicts — but needs no
/// shared mutable state: scratch buffers start empty and refill on first
/// use. This is what keeps parallel discovery bit-identical to the
/// sequential run.
pub trait OcValidatorBackend: Send {
    /// A short stable identifier ("exact", "optimal", "iterative", …) for
    /// logs and experiment tables.
    fn name(&self) -> &'static str;

    /// Size of the removal set this backend finds for `ctx: A ~ B`, or
    /// `None` once it can prove the size exceeds `limit` (the paper's
    /// "INVALID" early exit; pass `usize::MAX` for an unbounded search).
    ///
    /// Exact backends report `Some(0)` when the OC holds and `None`
    /// otherwise; approximate backends need not find a *minimal* set
    /// (Algorithm 1 overestimates) but must never underestimate.
    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize>;

    /// A fresh backend of the same kind for a parallel worker thread.
    ///
    /// Forks carry configuration but not scratch state, and must return
    /// the same verdict as `self` for every candidate (see the trait-level
    /// threading contract).
    fn fork(&self) -> Box<dyn OcValidatorBackend>;

    /// The sampling pre-check verdict of the most recent
    /// [`min_removal`](OcValidatorBackend::min_removal) call:
    /// `Some(ProvenInvalid)` when the sample alone rejected the candidate,
    /// `Some(NeedFullValidation)` when the full validator had to run after
    /// the sample passed, `None` when no pre-check ran. The discovery
    /// engine polls this after every candidate to maintain the per-level
    /// hit/miss counters. Backends without a pre-check keep the default.
    fn last_sample(&self) -> Option<SampleVerdict> {
        None
    }

    /// Level-barrier feedback from the discovery engine: the *merged*
    /// sample hit/miss counters of the level that just completed.
    /// Adaptive backends (the hybrid sampler) retune their configuration
    /// here — and only here, so within a level the configuration is
    /// fixed and forks behave identically across thread counts. Default:
    /// no-op.
    fn level_feedback(&mut self, hits: usize, misses: usize) {
        let _ = (hits, misses);
    }
}

/// Exact validation: `Some(0)` iff no class contains a swap.
#[derive(Debug, Default)]
pub struct ExactOcBackend {
    validator: OcValidator,
}

impl OcValidatorBackend for ExactOcBackend {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        _limit: usize,
    ) -> Option<usize> {
        self.validator
            .exact_oc_holds(ctx, a_ranks, b_ranks)
            .then_some(0)
    }

    fn fork(&self) -> Box<dyn OcValidatorBackend> {
        Box::new(ExactOcBackend::default())
    }
}

/// **Algorithm 2** — the LNDS-based validator with provably minimal
/// removal sets, `O(m log m)` per class.
#[derive(Debug, Default)]
pub struct OptimalOcBackend {
    validator: OcValidator,
}

impl OcValidatorBackend for OptimalOcBackend {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        self.validator
            .min_removal_optimal(ctx, a_ranks, b_ranks, limit)
    }

    fn fork(&self) -> Box<dyn OcValidatorBackend> {
        Box::new(OptimalOcBackend::default())
    }
}

/// **Algorithm 1** — the iterative PVLDB'17 baseline,
/// `O(m log m + ε m²)`, possibly overestimating.
#[derive(Debug, Default)]
pub struct IterativeOcBackend {
    validator: OcValidator,
}

impl OcValidatorBackend for IterativeOcBackend {
    fn name(&self) -> &'static str {
        "iterative"
    }

    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        self.validator
            .min_removal_iterative(ctx, a_ranks, b_ranks, limit)
    }

    fn fork(&self) -> Box<dyn OcValidatorBackend> {
        Box::new(IterativeOcBackend::default())
    }
}

/// When a level's sample hit rate (`hits / (hits + misses)`) falls below
/// this floor, [`HybridOcBackend`] halves its stride: a sample that almost
/// never rejects is pure overhead at its current coarseness, so it is made
/// denser (stronger lower bound) until, at stride 1, the pre-check turns
/// itself off.
pub const SAMPLE_HIT_RATE_FLOOR: f64 = 0.25;

/// The **hybrid** backend: [`presample`](crate::presample) quick-reject in front of
/// **Algorithm 2** (the paper's future-work "hybrid sampling" direction).
///
/// Every candidate is first validated on a systematic every-`stride`-th-row
/// sample of its context classes; by the lower-bound lemma the sample can
/// *soundly* prove dirty candidates invalid in `O((m/stride)·log)` instead
/// of `O(m log m)`. Candidates that pass the sample get the full optimal
/// validation, so verdicts — and therefore discovered dependency sets,
/// events and prune decisions — are bit-identical to
/// [`OptimalOcBackend`]'s.
///
/// The stride adapts **per discovery level**, driven by the engine through
/// [`level_feedback`](OcValidatorBackend::level_feedback): it starts at the
/// configured coarseness and halves whenever the level's hit rate drops
/// below [`SAMPLE_HIT_RATE_FLOOR`], bottoming out at 1 (pre-check
/// disabled). Adapting only at level barriers — from counters the engine
/// merges deterministically — keeps the stride schedule, and with it every
/// counter, identical across thread counts.
#[derive(Debug)]
pub struct HybridOcBackend {
    validator: OcValidator,
    scratch: SampleScratch,
    stride: usize,
    last_sample: Option<SampleVerdict>,
}

impl HybridOcBackend {
    /// A hybrid backend starting at the given sample stride (`≥ 1`;
    /// 1 disables the pre-check and degenerates to plain optimal).
    pub fn new(stride: usize) -> HybridOcBackend {
        HybridOcBackend {
            validator: OcValidator::new(),
            scratch: SampleScratch::default(),
            stride: stride.max(1),
            last_sample: None,
        }
    }

    /// The current (possibly adapted) sample stride.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl OcValidatorBackend for HybridOcBackend {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        if self.stride < 2 {
            // Pre-check disabled: plain Algorithm 2, no counter traffic.
            self.last_sample = None;
            return self
                .validator
                .min_removal_optimal(ctx, a_ranks, b_ranks, limit);
        }
        let verdict = presample_with_scratch(
            &mut self.validator,
            ctx,
            a_ranks,
            b_ranks,
            limit,
            self.stride,
            &mut self.scratch,
        );
        self.last_sample = Some(verdict);
        match verdict {
            SampleVerdict::ProvenInvalid => None,
            SampleVerdict::NeedFullValidation => self
                .validator
                .min_removal_optimal(ctx, a_ranks, b_ranks, limit),
        }
    }

    fn fork(&self) -> Box<dyn OcValidatorBackend> {
        // Configuration (the current stride) is inherited; scratch and the
        // last-sample latch are not.
        Box::new(HybridOcBackend::new(self.stride))
    }

    fn last_sample(&self) -> Option<SampleVerdict> {
        self.last_sample
    }

    fn level_feedback(&mut self, hits: usize, misses: usize) {
        let total = hits + misses;
        if total == 0 || self.stride < 2 {
            return;
        }
        if (hits as f64) / (total as f64) < SAMPLE_HIT_RATE_FLOOR {
            self.stride /= 2;
        }
    }
}

/// The backend implementing a configured [`AocStrategy`].
pub fn strategy_backend(strategy: AocStrategy) -> Box<dyn OcValidatorBackend> {
    match strategy {
        AocStrategy::Optimal => Box::new(OptimalOcBackend::default()),
        AocStrategy::Iterative => Box::new(IterativeOcBackend::default()),
        AocStrategy::Hybrid { stride } => Box::new(HybridOcBackend::new(stride)),
    }
}

/// The backend for exact (ε = 0, scan-based) OC validation.
pub fn exact_backend() -> Box<dyn OcValidatorBackend> {
    Box::new(ExactOcBackend::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_table::{employee_table, RankedTable};

    const SAL: usize = 2;
    const TAX: usize = 5;

    fn backends() -> Vec<Box<dyn OcValidatorBackend>> {
        vec![
            exact_backend(),
            strategy_backend(AocStrategy::Optimal),
            strategy_backend(AocStrategy::Iterative),
            strategy_backend(AocStrategy::Hybrid { stride: 4 }),
        ]
    }

    #[test]
    fn backends_agree_with_their_validators() {
        // e(sal ~ tax) = 4/9: exact says no, optimal 4, iterative 5, and
        // hybrid — being optimal behind a sound pre-check — 4 again.
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(TAX).ranks());
        let results: Vec<Option<usize>> = backends()
            .iter_mut()
            .map(|v| v.min_removal(&ctx, a, b, usize::MAX))
            .collect();
        assert_eq!(results, vec![None, Some(4), Some(5), Some(4)]);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = backends().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["exact", "optimal", "iterative", "hybrid"]);
    }

    #[test]
    fn hybrid_matches_optimal_on_all_pairs_and_limits() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        for stride in [1usize, 2, 4, 16] {
            let mut hybrid = HybridOcBackend::new(stride);
            let mut optimal = OptimalOcBackend::default();
            for a in 0..t.n_cols() {
                for b in 0..t.n_cols() {
                    if a == b {
                        continue;
                    }
                    let (ar, br) = (t.column(a).ranks(), t.column(b).ranks());
                    for limit in [0usize, 2, 4, usize::MAX] {
                        assert_eq!(
                            hybrid.min_removal(&ctx, ar, br, limit),
                            optimal.min_removal(&ctx, ar, br, limit),
                            "stride {stride}, pair ({a},{b}), limit {limit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_latches_the_sample_verdict_per_call() {
        // Fully anti-correlated pair: every sampled sub-instance of size
        // ≥ 2 still contains swaps, so the thin sample provably rejects.
        let n = 10usize;
        let asc: Vec<u32> = (0..n as u32).collect();
        let desc: Vec<u32> = (0..n as u32).rev().collect();
        let ctx = Partition::unit(n);
        let mut hybrid = HybridOcBackend::new(2);
        assert_eq!(hybrid.last_sample(), None, "nothing validated yet");
        assert_eq!(hybrid.min_removal(&ctx, &asc, &desc, 0), None);
        assert_eq!(hybrid.last_sample(), Some(SampleVerdict::ProvenInvalid));
        // A clean pair: the sample passes, the full validator confirms.
        assert_eq!(hybrid.min_removal(&ctx, &asc, &asc, 0), Some(0));
        assert_eq!(
            hybrid.last_sample(),
            Some(SampleVerdict::NeedFullValidation)
        );
        // Stride 1 disables the pre-check — no verdict latched.
        let mut plain = HybridOcBackend::new(1);
        assert_eq!(plain.min_removal(&ctx, &asc, &desc, 0), None);
        assert_eq!(plain.last_sample(), None);
    }

    #[test]
    fn hybrid_adapts_stride_only_on_poor_hit_rates() {
        let mut b = HybridOcBackend::new(16);
        b.level_feedback(0, 0); // empty level: no signal, no change
        assert_eq!(b.stride(), 16);
        b.level_feedback(8, 2); // 80% hits: sample is earning its keep
        assert_eq!(b.stride(), 16);
        b.level_feedback(1, 9); // 10% hits: halve
        assert_eq!(b.stride(), 8);
        b.level_feedback(0, 5);
        assert_eq!(b.stride(), 4);
        b.level_feedback(0, 5);
        assert_eq!(b.stride(), 2);
        b.level_feedback(0, 5);
        assert_eq!(b.stride(), 1, "bottoms out at 1 (pre-check off)");
        b.level_feedback(0, 5);
        assert_eq!(b.stride(), 1, "never drops below 1");
    }

    #[test]
    fn hybrid_forks_inherit_the_adapted_stride() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(TAX).ranks());
        let mut parent = HybridOcBackend::new(8);
        parent.level_feedback(0, 10); // adapt: 8 -> 4
        assert_eq!(parent.stride(), 4);
        let mut fork = parent.fork();
        assert_eq!(fork.name(), "hybrid");
        for limit in [0, 3, usize::MAX] {
            assert_eq!(
                fork.min_removal(&ctx, a, b, limit),
                OcValidatorBackend::min_removal(&mut parent, &ctx, a, b, limit),
            );
            assert_eq!(fork.last_sample(), parent.last_sample(), "limit {limit}");
        }
    }

    #[test]
    fn limits_turn_into_invalid() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(TAX).ranks());
        for mut backend in [
            strategy_backend(AocStrategy::Optimal),
            strategy_backend(AocStrategy::Iterative),
        ] {
            assert_eq!(backend.min_removal(&ctx, a, b, 3), None);
        }
    }

    #[test]
    fn forks_match_their_parents() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(TAX).ranks());
        for parent in backends().iter_mut() {
            let mut fork = parent.fork();
            assert_eq!(fork.name(), parent.name());
            for limit in [0, 3, usize::MAX] {
                assert_eq!(
                    fork.min_removal(&ctx, a, b, limit),
                    parent.min_removal(&ctx, a, b, limit),
                );
            }
        }
    }

    #[test]
    fn exact_backend_on_holding_oc() {
        // sal ~ taxGrp holds exactly (Example 2.4).
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(3).ranks());
        assert_eq!(exact_backend().min_removal(&ctx, a, b, 0), Some(0));
    }
}
