//! Pluggable OC-validation backends for the discovery engine.
//!
//! The level-wise driver in `aod-core` does not care *how* a candidate
//! `X: A ~ B` is validated — only that some algorithm reports the size of a
//! removal set within a budget. [`OcValidatorBackend`] captures exactly that
//! contract, so the three paper configurations (exact scan, **Algorithm 2**
//! optimal LNDS, **Algorithm 1** iterative baseline) become interchangeable
//! values, and future backends (parallel, sampled, GPU) plug into the
//! driver without touching it.
//!
//! ```
//! use aod_partition::Partition;
//! use aod_validate::{strategy_backend, AocStrategy, OcValidatorBackend};
//!
//! let mut backend = strategy_backend(AocStrategy::Optimal);
//! let ctx = Partition::unit(4);
//! // B = [0, 2, 1, 3] against ascending A: one removal repairs the OC.
//! let removed = backend.min_removal(&ctx, &[0, 1, 2, 3], &[0, 2, 1, 3], usize::MAX);
//! assert_eq!(removed, Some(1));
//! assert_eq!(backend.name(), "optimal");
//! ```

use crate::oc::OcValidator;
use crate::AocStrategy;
use aod_partition::Partition;

/// A strategy object validating order-compatibility candidates.
///
/// Implementations are stateful (they may keep scratch buffers across
/// candidates — the discovery engine reuses one backend for the entire
/// run) and must be [`Send`] so sessions can migrate across threads.
///
/// ## Threading contract
///
/// The parallel per-level validator does **not** share one backend across
/// workers (that would serialise the hot path behind a lock). Instead it
/// calls [`fork`](OcValidatorBackend::fork) once per worker thread at the
/// start of each level and hands every worker its own instance. A fork
/// must therefore behave *identically* to its parent on every
/// `min_removal` call — same algorithm, same verdicts — but needs no
/// shared mutable state: scratch buffers start empty and refill on first
/// use. This is what keeps parallel discovery bit-identical to the
/// sequential run.
pub trait OcValidatorBackend: Send {
    /// A short stable identifier ("exact", "optimal", "iterative", …) for
    /// logs and experiment tables.
    fn name(&self) -> &'static str;

    /// Size of the removal set this backend finds for `ctx: A ~ B`, or
    /// `None` once it can prove the size exceeds `limit` (the paper's
    /// "INVALID" early exit; pass `usize::MAX` for an unbounded search).
    ///
    /// Exact backends report `Some(0)` when the OC holds and `None`
    /// otherwise; approximate backends need not find a *minimal* set
    /// (Algorithm 1 overestimates) but must never underestimate.
    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize>;

    /// A fresh backend of the same kind for a parallel worker thread.
    ///
    /// Forks carry configuration but not scratch state, and must return
    /// the same verdict as `self` for every candidate (see the trait-level
    /// threading contract).
    fn fork(&self) -> Box<dyn OcValidatorBackend>;
}

/// Exact validation: `Some(0)` iff no class contains a swap.
#[derive(Debug, Default)]
pub struct ExactOcBackend {
    validator: OcValidator,
}

impl OcValidatorBackend for ExactOcBackend {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        _limit: usize,
    ) -> Option<usize> {
        self.validator
            .exact_oc_holds(ctx, a_ranks, b_ranks)
            .then_some(0)
    }

    fn fork(&self) -> Box<dyn OcValidatorBackend> {
        Box::new(ExactOcBackend::default())
    }
}

/// **Algorithm 2** — the LNDS-based validator with provably minimal
/// removal sets, `O(m log m)` per class.
#[derive(Debug, Default)]
pub struct OptimalOcBackend {
    validator: OcValidator,
}

impl OcValidatorBackend for OptimalOcBackend {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        self.validator
            .min_removal_optimal(ctx, a_ranks, b_ranks, limit)
    }

    fn fork(&self) -> Box<dyn OcValidatorBackend> {
        Box::new(OptimalOcBackend::default())
    }
}

/// **Algorithm 1** — the iterative PVLDB'17 baseline,
/// `O(m log m + ε m²)`, possibly overestimating.
#[derive(Debug, Default)]
pub struct IterativeOcBackend {
    validator: OcValidator,
}

impl OcValidatorBackend for IterativeOcBackend {
    fn name(&self) -> &'static str {
        "iterative"
    }

    fn min_removal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        self.validator
            .min_removal_iterative(ctx, a_ranks, b_ranks, limit)
    }

    fn fork(&self) -> Box<dyn OcValidatorBackend> {
        Box::new(IterativeOcBackend::default())
    }
}

/// The backend implementing a configured [`AocStrategy`].
pub fn strategy_backend(strategy: AocStrategy) -> Box<dyn OcValidatorBackend> {
    match strategy {
        AocStrategy::Optimal => Box::new(OptimalOcBackend::default()),
        AocStrategy::Iterative => Box::new(IterativeOcBackend::default()),
    }
}

/// The backend for exact (ε = 0, scan-based) OC validation.
pub fn exact_backend() -> Box<dyn OcValidatorBackend> {
    Box::new(ExactOcBackend::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_table::{employee_table, RankedTable};

    const SAL: usize = 2;
    const TAX: usize = 5;

    fn backends() -> Vec<Box<dyn OcValidatorBackend>> {
        vec![
            exact_backend(),
            strategy_backend(AocStrategy::Optimal),
            strategy_backend(AocStrategy::Iterative),
        ]
    }

    #[test]
    fn backends_agree_with_their_validators() {
        // e(sal ~ tax) = 4/9: exact says no, optimal 4, iterative 5.
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(TAX).ranks());
        let results: Vec<Option<usize>> = backends()
            .iter_mut()
            .map(|v| v.min_removal(&ctx, a, b, usize::MAX))
            .collect();
        assert_eq!(results, vec![None, Some(4), Some(5)]);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = backends().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["exact", "optimal", "iterative"]);
    }

    #[test]
    fn limits_turn_into_invalid() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(TAX).ranks());
        for mut backend in [
            strategy_backend(AocStrategy::Optimal),
            strategy_backend(AocStrategy::Iterative),
        ] {
            assert_eq!(backend.min_removal(&ctx, a, b, 3), None);
        }
    }

    #[test]
    fn forks_match_their_parents() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(TAX).ranks());
        for parent in backends().iter_mut() {
            let mut fork = parent.fork();
            assert_eq!(fork.name(), parent.name());
            for limit in [0, 3, usize::MAX] {
                assert_eq!(
                    fork.min_removal(&ctx, a, b, limit),
                    parent.min_removal(&ctx, a, b, limit),
                );
            }
        }
    }

    #[test]
    fn exact_backend_on_holding_oc() {
        // sal ~ taxGrp holds exactly (Example 2.4).
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let (a, b) = (t.column(SAL).ranks(), t.column(3).ranks());
        assert_eq!(exact_backend().min_removal(&ctx, a, b, 0), Some(0));
    }
}
