//! Sampling-based quick rejection of AOC candidates.
//!
//! The paper's future-work section points to "new approaches for
//! discovering approximate OCs, such as hybrid sampling, as done in [6]
//! for FDs". This module implements the sound half of that idea as a
//! drop-in pre-check:
//!
//! **Lower-bound lemma.** For any subset `S ⊆ r` of the rows, the minimal
//! removal-set size of an (A)OC on `S` is at most its size on `r`: a
//! removal set `s` for `r` induces the removal set `s ∩ S` on `S` (removing
//! the same tuples from fewer rows still leaves no swap). Hence if a
//! *sample's* minimal removal count already exceeds the full-table budget
//! `⌊ε·n⌋`, the candidate is invalid — no full validation needed.
//!
//! The pre-check can only *reject* early; candidates that pass the sample
//! still require full validation, so results are bit-identical to the
//! unsampled pipeline (only faster on very dirty candidates).

use crate::oc::OcValidator;
use aod_partition::Partition;

/// Outcome of the sampled pre-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleVerdict {
    /// The sample alone proves the candidate invalid at the given budget.
    ProvenInvalid,
    /// The sample is inconclusive — run the full validation.
    NeedFullValidation,
}

/// Reusable buffers for [`presample_with_scratch`]: holding one of these
/// across candidates (as [`crate::HybridOcBackend`] does) removes the two
/// `Vec` allocations per pre-check from the validation hot path.
#[derive(Debug, Default)]
pub struct SampleScratch {
    elems: Vec<u32>,
    bounds: Vec<u32>,
}

/// Runs the optimal validator on every `stride`-th row (a systematic
/// sample) of the context classes and compares the resulting *lower bound*
/// against the full-table `budget`.
///
/// `stride = 1` degenerates to full validation of the bound; typical use
/// is `stride` in the 4–32 range. The sample keeps every class's selected
/// rows together, so it remains a valid sub-instance of the same OC.
///
/// Allocates fresh sample buffers; validation loops should prefer
/// [`presample_with_scratch`].
pub fn presample(
    validator: &mut OcValidator,
    ctx: &Partition,
    a_ranks: &[u32],
    b_ranks: &[u32],
    budget: usize,
    stride: usize,
) -> SampleVerdict {
    presample_with_scratch(
        validator,
        ctx,
        a_ranks,
        b_ranks,
        budget,
        stride,
        &mut SampleScratch::default(),
    )
}

/// [`presample`] with caller-provided buffers: the sampled sub-partition
/// is assembled in (and recovered back into) `scratch`, so repeated
/// pre-checks are allocation-free once the buffers have grown.
pub fn presample_with_scratch(
    validator: &mut OcValidator,
    ctx: &Partition,
    a_ranks: &[u32],
    b_ranks: &[u32],
    budget: usize,
    stride: usize,
    scratch: &mut SampleScratch,
) -> SampleVerdict {
    let stride = stride.max(1);
    // Build the sampled sub-partition: every stride-th grouped row, classes
    // preserved (classes that shrink below 2 rows drop out naturally).
    let mut elems = std::mem::take(&mut scratch.elems);
    let mut bounds = std::mem::take(&mut scratch.bounds);
    elems.clear();
    bounds.clear();
    bounds.push(0);
    for class in ctx.classes() {
        let start = elems.len();
        elems.extend(class.iter().step_by(stride).copied());
        if elems.len() - start >= 2 {
            bounds.push(elems.len() as u32);
        } else {
            elems.truncate(start);
        }
    }
    let sampled = Partition::from_parts(elems, bounds, ctx.n_rows());
    let verdict = match validator.min_removal_optimal(&sampled, a_ranks, b_ranks, budget) {
        // the sampled lower bound already exceeds the budget
        None => SampleVerdict::ProvenInvalid,
        Some(_) => SampleVerdict::NeedFullValidation,
    };
    let (elems, bounds, _) = sampled.into_parts();
    scratch.elems = elems;
    scratch.bounds = bounds;
    verdict
}

/// Full validation with the sampling pre-check in front: identical result
/// to [`OcValidator::min_removal_optimal`], potentially cheaper for very
/// dirty candidates.
pub fn min_removal_with_presample(
    validator: &mut OcValidator,
    ctx: &Partition,
    a_ranks: &[u32],
    b_ranks: &[u32],
    budget: usize,
    stride: usize,
) -> Option<usize> {
    if presample(validator, ctx, a_ranks, b_ranks, budget, stride) == SampleVerdict::ProvenInvalid {
        return None;
    }
    validator.min_removal_optimal(ctx, a_ranks, b_ranks, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sample_bound_rejects_garbage_pairs() {
        // a strictly increasing, b strictly decreasing: every pair swaps;
        // min removal = n - 1. Even a thin sample proves invalidity at a
        // small budget.
        let n = 1000usize;
        let a: Vec<u32> = (0..n as u32).collect();
        let b: Vec<u32> = (0..n as u32).rev().collect();
        let ctx = Partition::unit(n);
        let mut v = OcValidator::new();
        let verdict = presample(&mut v, &ctx, &a, &b, 50, 8);
        assert_eq!(verdict, SampleVerdict::ProvenInvalid);
        assert_eq!(
            min_removal_with_presample(&mut v, &ctx, &a, &b, 50, 8),
            None
        );
    }

    #[test]
    fn clean_pairs_pass_the_sample() {
        let n = 1000usize;
        let a: Vec<u32> = (0..n as u32).collect();
        let b = a.clone();
        let ctx = Partition::unit(n);
        let mut v = OcValidator::new();
        assert_eq!(
            presample(&mut v, &ctx, &a, &b, 10, 8),
            SampleVerdict::NeedFullValidation
        );
        assert_eq!(
            min_removal_with_presample(&mut v, &ctx, &a, &b, 10, 8),
            Some(0)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Soundness: the pre-checked pipeline returns exactly what the
        /// plain validator returns (the sample can only reject candidates
        /// whose true count exceeds the budget).
        #[test]
        fn presample_never_changes_the_answer(
            a in proptest::collection::vec(0u32..8, 2..40),
            b_seed in proptest::collection::vec(0u32..8, 2..40),
            ctx_vals in proptest::collection::vec(0u32..3, 2..40),
            budget in 0usize..10,
            stride in 1usize..6,
        ) {
            let n = a.len().min(b_seed.len()).min(ctx_vals.len());
            let (a, b, c) = (&a[..n], &b_seed[..n], &ctx_vals[..n]);
            let ctx = Partition::from_ranks(c, 3);
            let mut v = OcValidator::new();
            let plain = v.min_removal_optimal(&ctx, a, b, budget);
            let sampled = min_removal_with_presample(&mut v, &ctx, a, b, budget, stride);
            prop_assert_eq!(plain, sampled);
        }

        /// Soundness at the acceptance sweep: over random tables,
        /// stride ∈ {1..32} and ε ∈ {0, 0.05, …, 0.5}, `presample` never
        /// returns `ProvenInvalid` for a candidate the full optimal
        /// validator accepts — and the composed pipeline is therefore
        /// answer-identical. Also exercises `Partition::from_parts`
        /// invariants (monotone offsets, classes ≥ 2) across stride ×
        /// class-size combinations: debug assertions fire here if the
        /// sampled bounds ever degenerate.
        #[test]
        fn presample_is_sound_across_strides_and_epsilons(
            a in proptest::collection::vec(0u32..10, 2..64),
            b_seed in proptest::collection::vec(0u32..10, 2..64),
            ctx_vals in proptest::collection::vec(0u32..4, 2..64),
            stride in 1usize..33,
            eps_step in 0usize..11,
        ) {
            let n = a.len().min(b_seed.len()).min(ctx_vals.len());
            let (a, b, c) = (&a[..n], &b_seed[..n], &ctx_vals[..n]);
            let epsilon = eps_step as f64 * 0.05;
            let budget = crate::removal_budget(n, epsilon);
            let ctx = Partition::from_ranks(c, 4);
            let mut v = OcValidator::new();
            let plain = v.min_removal_optimal(&ctx, a, b, budget);
            let verdict = presample(&mut v, &ctx, a, b, budget, stride);
            if verdict == SampleVerdict::ProvenInvalid {
                // The sample may only reject candidates the full
                // validator rejects too.
                prop_assert_eq!(plain, None, "unsound reject at stride {}", stride);
            }
            let piped = min_removal_with_presample(&mut v, &ctx, a, b, budget, stride);
            prop_assert_eq!(plain, piped);
        }

        /// The lemma itself: a sampled sub-instance's minimal removal count
        /// never exceeds the full instance's.
        #[test]
        fn sample_is_a_lower_bound(
            a in proptest::collection::vec(0u32..8, 2..40),
            b in proptest::collection::vec(0u32..8, 2..40),
            stride in 1usize..6,
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let ctx = Partition::unit(n);
            let mut v = OcValidator::new();
            let full = v.min_removal_optimal(&ctx, a, b, usize::MAX).unwrap();
            // sampled instance: every stride-th row
            let rows: Vec<u32> = (0..n as u32).step_by(stride).collect();
            let a2: Vec<u32> = rows.iter().map(|&r| a[r as usize]).collect();
            let b2: Vec<u32> = rows.iter().map(|&r| b[r as usize]).collect();
            let ctx2 = Partition::unit(a2.len());
            let sampled = v.min_removal_optimal(&ctx2, &a2, &b2, usize::MAX).unwrap();
            prop_assert!(sampled <= full);
        }
    }
}
