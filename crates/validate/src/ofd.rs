//! Order functional dependency (OFD) validation.
//!
//! An OFD `X: [] |-> A` states that `A` is constant within each equivalence
//! class of `X` (Definition 2.11) — it is the FD `X -> A` in canonical
//! clothing. The approximate variant asks for the fewest tuples whose
//! removal makes it hold; per class that means keeping only the most
//! frequent `A` value, which is exactly TANE's `g₃` error [Huhtala et
//! al. '99] that the paper reuses ("an efficient linear-time algorithm for
//! validating approximate OFDs has already been established [3]").
//!
//! The counting itself lives in [`Partition::fd_removal_count`]; this module
//! adds early-exit and removal-set extraction on top.

use aod_partition::Partition;

/// Exact validation of `ctx: [] |-> A`: `true` iff every class of the
/// context partition is constant on `A`.
pub fn exact_ofd_holds(ctx: &Partition, a_ranks: &[u32]) -> bool {
    ctx.classes().all(|class| {
        let first = a_ranks[class[0] as usize];
        class[1..].iter().all(|&row| a_ranks[row as usize] == first)
    })
}

/// Minimal removal-set size for the approximate OFD `ctx: [] |-> A`, with
/// early exit: `None` once the count exceeds `limit`.
///
/// Linear in the grouped rows of the context partition.
pub fn min_removal_ofd(
    ctx: &Partition,
    a_ranks: &[u32],
    a_n_distinct: u32,
    limit: usize,
) -> Option<usize> {
    // Cheap path without early exit first: the count is linear anyway, and
    // the common case in discovery is small counts. Early exit matters only
    // for pathological classes, handled by the per-class check below.
    let mut counts = vec![0u32; a_n_distinct as usize];
    let mut removed = 0usize;
    for class in ctx.classes() {
        let mut max = 0u32;
        for &row in class {
            let c = &mut counts[a_ranks[row as usize] as usize];
            *c += 1;
            if *c > max {
                max = *c;
            }
        }
        removed += class.len() - max as usize;
        for &row in class {
            counts[a_ranks[row as usize] as usize] = 0;
        }
        if removed > limit {
            return None;
        }
    }
    Some(removed)
}

/// A minimal removal set (ascending row ids) for the approximate OFD
/// `ctx: [] |-> A`: within each class every row not carrying the class's
/// most frequent `A` value.
pub fn removal_set_ofd(ctx: &Partition, a_ranks: &[u32], a_n_distinct: u32) -> Vec<u32> {
    let mut counts = vec![0u32; a_n_distinct as usize];
    let mut removal = Vec::new();
    for class in ctx.classes() {
        let mut best_rank = a_ranks[class[0] as usize];
        let mut best = 0u32;
        for &row in class {
            let rank = a_ranks[row as usize];
            let c = &mut counts[rank as usize];
            *c += 1;
            if *c > best {
                best = *c;
                best_rank = rank;
            }
        }
        for &row in class {
            if a_ranks[row as usize] != best_rank {
                removal.push(row);
            }
            counts[a_ranks[row as usize] as usize] = 0;
        }
    }
    removal.sort_unstable();
    removal
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_table::{employee_table, RankedTable};

    fn employee() -> RankedTable {
        RankedTable::from_table(&employee_table())
    }

    #[test]
    fn sal_determines_taxgrp() {
        // sal |-> taxGrp holds, so {sal}: [] |-> taxGrp must hold.
        let t = employee();
        let ctx = Partition::from_ranked_column(t.column(2));
        let tg = t.column(3);
        assert!(exact_ofd_holds(&ctx, tg.ranks()));
        assert_eq!(
            min_removal_ofd(&ctx, tg.ranks(), tg.n_distinct(), usize::MAX),
            Some(0)
        );
        assert!(removal_set_ofd(&ctx, tg.ranks(), tg.n_distinct()).is_empty());
    }

    #[test]
    fn pos_exp_to_sal_needs_one_removal() {
        // Section 1.1: pos, exp -> sal fails only via the t6/t7 split.
        let t = employee();
        let ctx = Partition::for_attrs(&t, [0, 1]);
        let sal = t.column(2);
        assert!(!exact_ofd_holds(&ctx, sal.ranks()));
        assert_eq!(
            min_removal_ofd(&ctx, sal.ranks(), sal.n_distinct(), usize::MAX),
            Some(1)
        );
        let set = removal_set_ofd(&ctx, sal.ranks(), sal.n_distinct());
        assert_eq!(set.len(), 1);
        // The removed row is t6 or t7 (both minimal choices).
        assert!(set[0] == 5 || set[0] == 6);
    }

    #[test]
    fn early_exit() {
        let t = employee();
        // {}: [] |-> pos needs removing all but the most common position
        // (5 devs kept, 4 rows removed).
        let ctx = Partition::unit(9);
        let pos = t.column(0);
        assert_eq!(
            min_removal_ofd(&ctx, pos.ranks(), pos.n_distinct(), usize::MAX),
            Some(4)
        );
        assert_eq!(
            min_removal_ofd(&ctx, pos.ranks(), pos.n_distinct(), 3),
            None
        );
        assert_eq!(
            min_removal_ofd(&ctx, pos.ranks(), pos.n_distinct(), 4),
            Some(4)
        );
    }

    #[test]
    fn removal_set_matches_count_and_validates() {
        let t = employee();
        let ctx = Partition::unit(9);
        let pos = t.column(0);
        let set = removal_set_ofd(&ctx, pos.ranks(), pos.n_distinct());
        assert_eq!(set.len(), 4);
        // After removal every class is constant: simulate by filtering.
        let kept: Vec<u32> = (0..9u32).filter(|r| !set.contains(r)).collect();
        let first = pos.ranks()[kept[0] as usize];
        assert!(kept.iter().all(|&r| pos.ranks()[r as usize] == first));
    }

    #[test]
    fn keyed_context_is_trivially_valid() {
        let t = employee();
        let ctx = Partition::from_ranked_column(t.column(2)); // sal is a key
        assert!(ctx.is_key());
        let bonus = t.column(6);
        assert!(exact_ofd_holds(&ctx, bonus.ranks()));
        assert_eq!(
            min_removal_ofd(&ctx, bonus.ranks(), bonus.n_distinct(), 0),
            Some(0)
        );
    }
}
