//! Swap predicates and packed `(A, B)` pair utilities.
//!
//! A *swap* w.r.t. the OC `A ~ B` is a pair of tuples `s, t` with
//! `s ≺_A t` but `t ≺_B s` (Definition 2.5). All validators work within one
//! context equivalence class at a time on the rank pairs
//! `(rank_A(row), rank_B(row))`.
//!
//! Pairs are packed into a single `u64` (`A` in the high half) so that an
//! unstable `u64` sort realises the `[A ASC, B ASC]` order of Algorithm 1/2
//! line 3 — measurably faster than sorting `(u32, u32)` tuples and free of
//! per-element comparisons. For the OD variant (`B` descending tie-break,
//! Section 3.3) the low half stores `!B`.

/// Packs `(a, b)` so that `u64` order is `[A ASC, B ASC]`.
#[inline]
pub fn pack_asc(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Packs `(a, b)` so that `u64` order is `[A ASC, B DESC]`
/// (the tie-break used to validate ODs, which must also remove splits).
#[inline]
pub fn pack_desc_b(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | (!b) as u64
}

/// Extracts `a` from a packed pair (either packing).
#[inline]
pub fn unpack_a(key: u64) -> u32 {
    (key >> 32) as u32
}

/// Extracts `b` from an [`pack_asc`]-packed pair.
#[inline]
pub fn unpack_b_asc(key: u64) -> u32 {
    key as u32
}

/// Extracts `b` from a [`pack_desc_b`]-packed pair.
#[inline]
pub fn unpack_b_desc(key: u64) -> u32 {
    !(key as u32)
}

/// The swap predicate on two rank pairs: strictly ordered one way on `A`,
/// strictly the other way on `B`.
#[inline]
pub fn is_swap(s: (u32, u32), t: (u32, u32)) -> bool {
    (s.0 < t.0 && t.1 < s.1) || (t.0 < s.0 && s.1 < t.1)
}

/// The split predicate on two rank pairs w.r.t. the FD `A -> B`:
/// equal on `A`, different on `B` (Definition 2.6).
#[inline]
pub fn is_split(s: (u32, u32), t: (u32, u32)) -> bool {
    s.0 == t.0 && s.1 != t.1
}

/// Counts swaps among `pairs` by brute force (`O(m²)`, test oracle).
pub fn count_swaps_brute(pairs: &[(u32, u32)]) -> u64 {
    let mut count = 0;
    for i in 0..pairs.len() {
        for j in i + 1..pairs.len() {
            if is_swap(pairs[i], pairs[j]) {
                count += 1;
            }
        }
    }
    count
}

/// `true` iff a `[A ASC, B ASC]`-sorted slice of packed pairs contains no
/// swap, i.e. its `B` projection is non-decreasing.
///
/// Correctness: if `B` decreases between adjacent sorted positions `i < i+1`
/// the `A` values must differ (equal-`A` runs are `B`-ascending by the
/// tie-break), giving a swap; conversely a swap `(s, t)` with
/// `s.a < t.a, t.b < s.b` places `s` before `t` with a `B` descent somewhere
/// between them.
pub fn sorted_pairs_swap_free(sorted_keys: &[u64]) -> bool {
    sorted_keys
        .windows(2)
        .all(|w| unpack_b_asc(w[0]) <= unpack_b_asc(w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        for &(a, b) in &[(0u32, 0u32), (1, 2), (u32::MAX, 7), (3, u32::MAX)] {
            assert_eq!(unpack_a(pack_asc(a, b)), a);
            assert_eq!(unpack_b_asc(pack_asc(a, b)), b);
            assert_eq!(unpack_a(pack_desc_b(a, b)), a);
            assert_eq!(unpack_b_desc(pack_desc_b(a, b)), b);
        }
    }

    #[test]
    fn asc_packing_orders_lexicographically() {
        let mut keys = [
            pack_asc(1, 5),
            pack_asc(0, 9),
            pack_asc(1, 2),
            pack_asc(0, 0),
        ];
        keys.sort_unstable();
        let pairs: Vec<(u32, u32)> = keys
            .iter()
            .map(|&k| (unpack_a(k), unpack_b_asc(k)))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (0, 9), (1, 2), (1, 5)]);
    }

    #[test]
    fn desc_packing_reverses_b_ties() {
        let mut keys = [pack_desc_b(1, 2), pack_desc_b(1, 9), pack_desc_b(0, 3)];
        keys.sort_unstable();
        let pairs: Vec<(u32, u32)> = keys
            .iter()
            .map(|&k| (unpack_a(k), unpack_b_desc(k)))
            .collect();
        assert_eq!(pairs, vec![(0, 3), (1, 9), (1, 2)]);
    }

    #[test]
    fn swap_predicate() {
        assert!(is_swap((0, 1), (1, 0)));
        assert!(is_swap((1, 0), (0, 1))); // symmetric
        assert!(!is_swap((0, 0), (1, 1))); // co-ordered
        assert!(!is_swap((0, 5), (0, 1))); // equal A: a split, not a swap
        assert!(!is_swap((0, 1), (1, 1))); // equal B: not a swap
        assert!(!is_swap((2, 2), (2, 2)));
    }

    #[test]
    fn split_predicate() {
        assert!(is_split((0, 1), (0, 2)));
        assert!(!is_split((0, 1), (1, 2)));
        assert!(!is_split((0, 1), (0, 1)));
    }

    #[test]
    fn swap_free_check_on_sorted_pairs() {
        let clean: Vec<u64> = [(0u32, 0u32), (0, 5), (1, 5), (2, 9)]
            .iter()
            .map(|&(a, b)| pack_asc(a, b))
            .collect();
        assert!(sorted_pairs_swap_free(&clean));
        let dirty: Vec<u64> = [(0u32, 5u32), (1, 3)]
            .iter()
            .map(|&(a, b)| pack_asc(a, b))
            .collect();
        assert!(!sorted_pairs_swap_free(&dirty));
    }

    #[test]
    fn brute_swap_count_matches_manual() {
        // Example 2.7-style: the pair ((0,1),(1,0)) swaps.
        let pairs = [(0, 1), (1, 0), (2, 2)];
        assert_eq!(count_swaps_brute(&pairs), 1);
    }
}
