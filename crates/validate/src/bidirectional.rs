//! Bidirectional order compatibilities (mixed ascending/descending).
//!
//! The discovery framework the paper builds on was extended to
//! *bidirectional* ODs in [Szlichta et al., VLDBJ'18]: `SELECT … ORDER BY
//! A asc, B desc` style orders, where each side of an OC may be ascending
//! or descending. The paper proper stays unidirectional; this module
//! implements the natural extension for the validators, which is exact:
//!
//! a descending attribute is an ascending attribute under the *reversed*
//! rank order, so validating `A asc ~ B desc` is validating
//! `A ~ reverse(B)` with the ordinary machinery — including minimality of
//! the LNDS removal sets, which is order-agnostic.

use crate::oc::OcValidator;
use aod_partition::Partition;

/// Sort direction of one side of a bidirectional OC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Ascending (the paper's default).
    Asc,
    /// Descending.
    Desc,
}

impl Direction {
    /// Applies the direction to a dense rank column: identity for `Asc`,
    /// rank reversal (`n_distinct - 1 - r`) for `Desc`.
    pub fn apply(self, ranks: &[u32], n_distinct: u32) -> Vec<u32> {
        match self {
            Direction::Asc => ranks.to_vec(),
            Direction::Desc => {
                let top = n_distinct.saturating_sub(1);
                ranks.iter().map(|&r| top - r).collect()
            }
        }
    }
}

/// Minimal removal-set size for the bidirectional AOC
/// `ctx: A dir_a ~ B dir_b`, with early exit (`None` above `limit`).
///
/// `A asc ~ B asc` equals the ordinary OC; `A desc ~ B desc` equals it too
/// (reversing both sides preserves co-ordering); the mixed cases are the
/// new ones.
#[allow(clippy::too_many_arguments)]
pub fn min_removal_bidirectional(
    validator: &mut OcValidator,
    ctx: &Partition,
    a_ranks: &[u32],
    a_n_distinct: u32,
    dir_a: Direction,
    b_ranks: &[u32],
    b_n_distinct: u32,
    dir_b: Direction,
    limit: usize,
) -> Option<usize> {
    // Normalise so that A is ascending: reversing *both* sides of an OC
    // leaves its swaps unchanged (a swap is an orientation disagreement),
    // so `A desc ~ B dir` over the original ranks equals
    // `A asc ~ B flip(dir)` — flip B's direction and leave A untouched.
    // (Reversing A *and* flipping B, as an earlier version did, applies
    // the identity twice and validates the wrong instance; the brute-force
    // pinning tests in `tests/cross_validator.rs` guard this.)
    debug_assert!(
        a_ranks.iter().all(|&r| r < a_n_distinct.max(1)),
        "a_ranks must be dense in 0..a_n_distinct"
    );
    let eff_dir_b = match dir_a {
        Direction::Asc => dir_b,
        Direction::Desc => match dir_b {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        },
    };
    match eff_dir_b {
        Direction::Asc => validator.min_removal_optimal(ctx, a_ranks, b_ranks, limit),
        Direction::Desc => {
            let b_rev = Direction::Desc.apply(b_ranks, b_n_distinct);
            validator.min_removal_optimal(ctx, a_ranks, &b_rev, limit)
        }
    }
}

/// Exact validation of the bidirectional OC.
#[allow(clippy::too_many_arguments)]
pub fn bidirectional_oc_holds(
    validator: &mut OcValidator,
    ctx: &Partition,
    a_ranks: &[u32],
    a_n_distinct: u32,
    dir_a: Direction,
    b_ranks: &[u32],
    b_n_distinct: u32,
    dir_b: Direction,
) -> bool {
    min_removal_bidirectional(
        validator,
        ctx,
        a_ranks,
        a_n_distinct,
        dir_a,
        b_ranks,
        b_n_distinct,
        dir_b,
        0,
    ) == Some(0)
}

/// Picks, per pair, the direction combination with the smallest removal
/// count — the bidirectional-discovery primitive ("is there *any* order in
/// which these two attributes agree?"). Returns
/// `(dir_b, removal_count)` with `A` fixed ascending (fixing one side loses
/// no generality: flipping both sides is a no-op).
pub fn best_direction(
    validator: &mut OcValidator,
    ctx: &Partition,
    a_ranks: &[u32],
    b_ranks: &[u32],
    b_n_distinct: u32,
) -> (Direction, usize) {
    let asc = validator
        .min_removal_optimal(ctx, a_ranks, b_ranks, usize::MAX)
        .expect("no limit");
    let b_rev = Direction::Desc.apply(b_ranks, b_n_distinct);
    let desc = validator
        .min_removal_optimal(ctx, a_ranks, &b_rev, usize::MAX)
        .expect("no limit");
    if desc < asc {
        (Direction::Desc, desc)
    } else {
        (Direction::Asc, asc)
    }
}

/// A swap w.r.t. a *descending* `B`: the tuples agree in orientation on
/// `A` and `B` (both strictly increasing together), which contradicts
/// `B desc`. Exposed for tests and downstream tooling.
pub fn is_mixed_swap(s: (u32, u32), t: (u32, u32)) -> bool {
    (s.0 < t.0 && s.1 < t.1) || (t.0 < s.0 && t.1 < s.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swap::is_swap;

    fn unit(n: usize) -> Partition {
        Partition::unit(n)
    }

    #[test]
    fn anti_correlated_columns_need_desc() {
        // age ascending, birthYear descending: perfectly anti-correlated.
        let age: Vec<u32> = vec![0, 1, 2, 3, 4];
        let birth_year: Vec<u32> = vec![4, 3, 2, 1, 0];
        let mut v = OcValidator::new();
        let ctx = unit(5);
        // ascending ~ ascending fails badly...
        assert!(!v.exact_oc_holds(&ctx, &age, &birth_year));
        // ...but asc ~ desc holds exactly.
        assert!(bidirectional_oc_holds(
            &mut v,
            &ctx,
            &age,
            5,
            Direction::Asc,
            &birth_year,
            5,
            Direction::Desc
        ));
        let (dir, removed) = best_direction(&mut v, &ctx, &age, &birth_year, 5);
        assert_eq!(dir, Direction::Desc);
        assert_eq!(removed, 0);
    }

    #[test]
    fn flipping_both_sides_is_identity() {
        let a = vec![0u32, 2, 1, 3, 1];
        let b = vec![1u32, 0, 2, 2, 3];
        let mut v = OcValidator::new();
        let ctx = unit(5);
        let asc_asc = min_removal_bidirectional(
            &mut v,
            &ctx,
            &a,
            4,
            Direction::Asc,
            &b,
            4,
            Direction::Asc,
            usize::MAX,
        );
        let desc_desc = min_removal_bidirectional(
            &mut v,
            &ctx,
            &a,
            4,
            Direction::Desc,
            &b,
            4,
            Direction::Desc,
            usize::MAX,
        );
        assert_eq!(asc_asc, desc_desc);
        let asc_desc = min_removal_bidirectional(
            &mut v,
            &ctx,
            &a,
            4,
            Direction::Asc,
            &b,
            4,
            Direction::Desc,
            usize::MAX,
        );
        let desc_asc = min_removal_bidirectional(
            &mut v,
            &ctx,
            &a,
            4,
            Direction::Desc,
            &b,
            4,
            Direction::Asc,
            usize::MAX,
        );
        assert_eq!(asc_desc, desc_asc);
    }

    #[test]
    fn approximate_mixed_direction() {
        // anti-correlated with one exception (position 2).
        let a: Vec<u32> = vec![0, 1, 2, 3, 4, 5];
        let b: Vec<u32> = vec![5, 4, 0, 2, 1, 3];
        let mut v = OcValidator::new();
        let ctx = unit(6);
        let (dir, removed) = best_direction(&mut v, &ctx, &a, &b, 6);
        assert_eq!(dir, Direction::Desc);
        assert!((1..=2).contains(&removed), "removed {removed}");
    }

    #[test]
    fn direction_apply_reverses_order() {
        let ranks = vec![0u32, 3, 1, 2];
        assert_eq!(Direction::Asc.apply(&ranks, 4), ranks);
        assert_eq!(Direction::Desc.apply(&ranks, 4), vec![3, 0, 2, 1]);
    }

    #[test]
    fn mixed_swap_predicate() {
        // co-ordering is the violation under desc-B.
        assert!(is_mixed_swap((0, 0), (1, 1)));
        assert!(!is_mixed_swap((0, 1), (1, 0)));
        assert!(!is_mixed_swap((0, 0), (0, 1)));
        // consistency: under reversal the ordinary predicate matches.
        let pairs = [(0u32, 0u32), (1, 1), (2, 0), (0, 2)];
        let max_b = 2;
        for &s in &pairs {
            for &t in &pairs {
                let rev = |p: (u32, u32)| (p.0, max_b - p.1);
                assert_eq!(is_mixed_swap(s, t), is_swap(rev(s), rev(t)), "{s:?} {t:?}");
            }
        }
    }
}
