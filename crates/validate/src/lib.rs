//! # aod-validate — exact and approximate dependency validators
//!
//! Implements Section 3 of *Efficient Discovery of Approximate Order
//! Dependencies* (EDBT 2021):
//!
//! * [`OcValidator`] — the per-candidate engine with three strategies:
//!   exact swap scan, **Algorithm 2** (LNDS-based, minimal and optimal) and
//!   **Algorithm 1** (the iterative PVLDB'17 baseline, quadratic and
//!   non-minimal), plus the descending-tie-break variant for canonical ODs.
//! * [`presample`] / [`HybridOcBackend`] — the **hybrid sampling**
//!   direction from the paper's future work: a sound every-`stride`-th-row
//!   quick-reject in front of Algorithm 2 ([`AocStrategy::Hybrid`]),
//!   answer-identical to the optimal validator but cheaper on dirty
//!   candidates.
//! * [`OcValidatorBackend`] — the pluggable strategy-object form of the
//!   same three validators ([`exact_backend`], [`strategy_backend`]); the
//!   `aod-core` discovery engine dispatches through this trait, so custom
//!   (parallel, sampled, …) backends drop in without touching the driver.
//! * [`min_removal_ofd`] and friends — linear approximate OFD validation
//!   (TANE's `g₃`).
//! * [`list_od_holds`] / [`list_od_min_removal`] — list-based `X |-> Y`
//!   validation through lexicographic projection ranks (footnote 1).
//! * [`brute_min_removal_oc`] / [`brute_min_removal_od`] — exponential
//!   ground-truth oracles used by the property-test suites.
//!
//! High-level one-shot entry points ([`validate_aoc`], [`validate_aofd`],
//! [`validate_aod`]) build the context partition on the fly and report an
//! [`Outcome`] with the approximation factor, mirroring the problem
//! statement of Section 2.3: *given `r`, `φ` and `ε`, decide whether
//! `e(φ) ≤ ε`*.
//!
//! ```
//! use aod_table::{employee_table, RankedTable};
//! use aod_partition::AttrSet;
//! use aod_validate::{validate_aoc, AocStrategy};
//!
//! let t = RankedTable::from_table(&employee_table());
//! // Example 2.15: e(sal ~ tax) = 4/9 ≈ 0.44.
//! let out = validate_aoc(&t, AttrSet::EMPTY, 2, 5, 0.5, AocStrategy::Optimal);
//! assert!(out.is_valid());
//! assert_eq!(out.removed, Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod bidirectional;
mod brute;
mod oc;
mod od;
mod ofd;
mod sampled;
mod swap;

pub use backend::{
    exact_backend, strategy_backend, ExactOcBackend, HybridOcBackend, IterativeOcBackend,
    OcValidatorBackend, OptimalOcBackend, SAMPLE_HIT_RATE_FLOOR,
};
pub use bidirectional::{
    best_direction, bidirectional_oc_holds, is_mixed_swap, min_removal_bidirectional, Direction,
};
pub use brute::{
    brute_min_removal_oc, brute_min_removal_od, brute_min_removal_pairs, ViolationKind,
    MAX_BRUTE_CLASS,
};
pub use oc::{OcValidator, PairMode};
pub use od::{
    list_oc_holds, list_oc_min_removal, list_od_holds, list_od_min_removal, list_od_removal_set,
    projection_ranks,
};
pub use ofd::{exact_ofd_holds, min_removal_ofd, removal_set_ofd};
pub use sampled::{
    min_removal_with_presample, presample, presample_with_scratch, SampleScratch, SampleVerdict,
};
pub use swap::{
    count_swaps_brute, is_split, is_swap, pack_asc, pack_desc_b, sorted_pairs_swap_free,
};

use aod_partition::{AttrSet, Partition};
use aod_table::RankedTable;

/// The largest removal-set size admissible under threshold `epsilon`:
/// `e(φ) = |s|/n ≤ ε  ⟺  |s| ≤ ⌊ε·n⌋` (removal sets have integer size).
///
/// A small guard absorbs floating-point noise like `0.1 * 30 = 2.9999…`.
///
/// An `epsilon` outside `[0, 1]` is a caller bug: it trips a debug
/// assertion, and release builds clamp into range instead of computing a
/// nonsense budget. Boundary code (CLI flags, HTTP request parsers) should
/// range-check first — or use [`try_removal_budget`] — so a bad threshold
/// surfaces as a clean error, never a panic.
pub fn removal_budget(n_rows: usize, epsilon: f64) -> usize {
    debug_assert!(
        (0.0..=1.0).contains(&epsilon),
        "epsilon must be within [0, 1]"
    );
    let epsilon = if epsilon.is_nan() {
        0.0
    } else {
        epsilon.clamp(0.0, 1.0)
    };
    ((epsilon * n_rows as f64) + 1e-9).floor() as usize
}

/// The checked form of [`removal_budget`]: rejects thresholds outside
/// `[0, 1]` (including NaN) with a user-facing message instead of
/// asserting. Validation boundaries (CLI, HTTP) call this so
/// `--epsilon 1.5` is an error, not a panic.
pub fn try_removal_budget(n_rows: usize, epsilon: f64) -> Result<usize, String> {
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(format!("epsilon {epsilon} is not within [0, 1]"));
    }
    Ok(removal_budget(n_rows, epsilon))
}

/// Default systematic-sample stride for [`AocStrategy::Hybrid`]: every
/// 8th grouped row enters the pre-check sample.
pub const DEFAULT_SAMPLE_STRIDE: usize = 8;

/// Which AOC validation algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AocStrategy {
    /// Algorithm 2 — LNDS-based, minimal removal sets, `O(n log n)`.
    #[default]
    Optimal,
    /// Algorithm 1 — iterative max-swap removal, `O(n log n + εn²)`,
    /// may overestimate.
    Iterative,
    /// Algorithm 2 behind a sampling quick-reject (the hybrid direction
    /// from the paper's future work): a systematic every-`stride`-th-row
    /// sample is validated first, and — by the lower-bound lemma in
    /// [`presample`] — can prove dirty candidates invalid at a fraction
    /// of the cost. Candidates that pass the sample get the full optimal
    /// validation, so verdicts (and discovered dependency sets) are
    /// identical to [`AocStrategy::Optimal`].
    Hybrid {
        /// Initial sample stride (≥ 1; `1` disables the pre-check). The
        /// discovery engine adapts it downward level by level when the
        /// sample stops rejecting (see `HybridOcBackend`).
        stride: usize,
    },
}

impl AocStrategy {
    /// The hybrid strategy at [`DEFAULT_SAMPLE_STRIDE`].
    #[must_use]
    pub fn hybrid() -> AocStrategy {
        AocStrategy::Hybrid {
            stride: DEFAULT_SAMPLE_STRIDE,
        }
    }

    /// Short stable name ("optimal", "iterative", "hybrid") for logs,
    /// wire encodings and experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AocStrategy::Optimal => "optimal",
            AocStrategy::Iterative => "iterative",
            AocStrategy::Hybrid { .. } => "hybrid",
        }
    }

    /// The inverse of [`name`](AocStrategy::name): parses a strategy from
    /// its stable name plus an optional sample stride. This is the one
    /// shared name→strategy mapping for every validation boundary (CLI
    /// flags, HTTP job specs), so the accepted set can't drift between
    /// surfaces.
    ///
    /// # Errors
    /// Unknown names, a stride of 0, and a stride combined with a
    /// non-hybrid strategy are user-facing errors.
    pub fn from_name(name: &str, sample_stride: Option<usize>) -> Result<AocStrategy, String> {
        if sample_stride == Some(0) {
            return Err("sample stride must be at least 1".to_string());
        }
        let strategy = match name {
            "optimal" => AocStrategy::Optimal,
            "iterative" => AocStrategy::Iterative,
            "hybrid" => AocStrategy::Hybrid {
                stride: sample_stride.unwrap_or(DEFAULT_SAMPLE_STRIDE),
            },
            other => {
                return Err(format!(
                    "unknown strategy `{other}` (optimal|iterative|hybrid)"
                ))
            }
        };
        if sample_stride.is_some() && !matches!(strategy, AocStrategy::Hybrid { .. }) {
            return Err("sample stride only applies with the hybrid strategy".to_string());
        }
        Ok(strategy)
    }
}

/// Result of validating one approximate dependency against a threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Removal-set size found, or `None` when validation aborted because
    /// the count exceeded the budget (the paper's "INVALID").
    pub removed: Option<usize>,
    /// The admissible budget `⌊ε·n⌋`.
    pub budget: usize,
    /// Table size the factor is relative to.
    pub n_rows: usize,
}

impl Outcome {
    /// `true` iff the dependency holds approximately w.r.t. the threshold.
    pub fn is_valid(&self) -> bool {
        matches!(self.removed, Some(r) if r <= self.budget)
    }

    /// The approximation factor `e(φ) = |s| / n`, when known.
    pub fn factor(&self) -> Option<f64> {
        match (self.removed, self.n_rows) {
            (Some(_), 0) => Some(0.0),
            (Some(r), n) => Some(r as f64 / n as f64),
            (None, _) => None,
        }
    }
}

/// Validates the canonical AOC `context: A ~ B` against `epsilon`,
/// building `Π_context` on the fly.
pub fn validate_aoc(
    table: &RankedTable,
    context: AttrSet,
    a: usize,
    b: usize,
    epsilon: f64,
    strategy: AocStrategy,
) -> Outcome {
    let ctx = Partition::for_attrs(table, context.iter());
    let budget = removal_budget(table.n_rows(), epsilon);
    let (ar, br) = (table.column(a).ranks(), table.column(b).ranks());
    let mut v = OcValidator::new();
    let removed = match strategy {
        AocStrategy::Optimal => v.min_removal_optimal(&ctx, ar, br, budget),
        AocStrategy::Iterative => v.min_removal_iterative(&ctx, ar, br, budget),
        AocStrategy::Hybrid { stride } => {
            min_removal_with_presample(&mut v, &ctx, ar, br, budget, stride)
        }
    };
    Outcome {
        removed,
        budget,
        n_rows: table.n_rows(),
    }
}

/// Validates the approximate OFD `context: [] |-> A` against `epsilon`.
pub fn validate_aofd(table: &RankedTable, context: AttrSet, a: usize, epsilon: f64) -> Outcome {
    let ctx = Partition::for_attrs(table, context.iter());
    let budget = removal_budget(table.n_rows(), epsilon);
    let col = table.column(a);
    let removed = min_removal_ofd(&ctx, col.ranks(), col.n_distinct(), budget);
    Outcome {
        removed,
        budget,
        n_rows: table.n_rows(),
    }
}

/// Validates the canonical AOD `context: A |-> B` (splits **and** swaps)
/// against `epsilon`, using the Section 3.3 descending tie-break.
pub fn validate_aod(
    table: &RankedTable,
    context: AttrSet,
    a: usize,
    b: usize,
    epsilon: f64,
) -> Outcome {
    let ctx = Partition::for_attrs(table, context.iter());
    let budget = removal_budget(table.n_rows(), epsilon);
    let (ar, br) = (table.column(a).ranks(), table.column(b).ranks());
    let removed = OcValidator::new().min_removal_od(&ctx, ar, br, budget);
    Outcome {
        removed,
        budget,
        n_rows: table.n_rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_table::{employee_table, RankedTable};
    use proptest::prelude::*;

    #[test]
    fn removal_budget_boundaries() {
        assert_eq!(removal_budget(9, 0.0), 0);
        assert_eq!(removal_budget(9, 1.0), 9);
        assert_eq!(removal_budget(9, 0.44), 3); // 3.96 floors to 3
        assert_eq!(removal_budget(9, 4.0 / 9.0), 4); // exactly representable intent
        assert_eq!(removal_budget(30, 0.1), 3); // fp guard: 0.1*30 = 2.9999…
        assert_eq!(removal_budget(0, 0.5), 0);
    }

    // A debug assertion, not a release panic: boundaries (CLI / HTTP)
    // range-check first, and `try_removal_budget` is the checked form.
    // Gated on debug_assertions so `cargo test --release` (which compiles
    // the assertion out and clamps instead) doesn't expect a panic.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn removal_budget_rejects_bad_epsilon_in_debug() {
        removal_budget(10, 1.5);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn removal_budget_clamps_bad_epsilon_in_release() {
        assert_eq!(removal_budget(10, 1.5), 10);
        assert_eq!(removal_budget(10, -3.0), 0);
        assert_eq!(removal_budget(10, f64::NAN), 0);
    }

    #[test]
    fn try_removal_budget_is_the_checked_boundary() {
        assert_eq!(try_removal_budget(9, 0.44), Ok(3));
        assert_eq!(try_removal_budget(9, 0.0), Ok(0));
        assert_eq!(try_removal_budget(9, 1.0), Ok(9));
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = try_removal_budget(9, bad).unwrap_err();
            assert!(err.contains("not within [0, 1]"), "{bad}: {err}");
        }
    }

    #[test]
    fn strategy_names_and_hybrid_default() {
        assert_eq!(AocStrategy::Optimal.name(), "optimal");
        assert_eq!(AocStrategy::Iterative.name(), "iterative");
        assert_eq!(AocStrategy::hybrid().name(), "hybrid");
        assert_eq!(
            AocStrategy::hybrid(),
            AocStrategy::Hybrid {
                stride: DEFAULT_SAMPLE_STRIDE
            }
        );
    }

    #[test]
    fn strategy_from_name_round_trips_and_validates() {
        // Round trip: every strategy parses back from its own name.
        for s in [
            AocStrategy::Optimal,
            AocStrategy::Iterative,
            AocStrategy::hybrid(),
        ] {
            let stride = match s {
                AocStrategy::Hybrid { stride } => Some(stride),
                _ => None,
            };
            assert_eq!(AocStrategy::from_name(s.name(), stride), Ok(s));
        }
        assert_eq!(
            AocStrategy::from_name("hybrid", None),
            Ok(AocStrategy::hybrid())
        );
        assert_eq!(
            AocStrategy::from_name("hybrid", Some(16)),
            Ok(AocStrategy::Hybrid { stride: 16 })
        );
        // Boundary errors, shared by CLI and HTTP surfaces.
        assert!(AocStrategy::from_name("fast", None)
            .unwrap_err()
            .contains("unknown strategy"));
        assert!(AocStrategy::from_name("hybrid", Some(0))
            .unwrap_err()
            .contains("at least 1"));
        assert!(AocStrategy::from_name("optimal", Some(8))
            .unwrap_err()
            .contains("only applies"));
        assert!(AocStrategy::from_name("iterative", Some(8)).is_err());
    }

    #[test]
    fn validate_aoc_hybrid_matches_optimal() {
        let t = RankedTable::from_table(&employee_table());
        for (eps, stride) in [(0.5, 4), (0.4, 8), (0.0, 2), (0.45, 1)] {
            let opt = validate_aoc(&t, AttrSet::EMPTY, 2, 5, eps, AocStrategy::Optimal);
            let hyb = validate_aoc(
                &t,
                AttrSet::EMPTY,
                2,
                5,
                eps,
                AocStrategy::Hybrid { stride },
            );
            assert_eq!(opt, hyb, "eps {eps}, stride {stride}");
        }
    }

    #[test]
    fn outcome_semantics() {
        let valid = Outcome {
            removed: Some(2),
            budget: 3,
            n_rows: 10,
        };
        assert!(valid.is_valid());
        assert_eq!(valid.factor(), Some(0.2));
        let invalid = Outcome {
            removed: None,
            budget: 3,
            n_rows: 10,
        };
        assert!(!invalid.is_valid());
        assert_eq!(invalid.factor(), None);
        let over = Outcome {
            removed: Some(4),
            budget: 3,
            n_rows: 10,
        };
        assert!(!over.is_valid());
    }

    #[test]
    fn paper_example_2_15_through_high_level_api() {
        let t = RankedTable::from_table(&employee_table());
        // e(sal ~ tax) = 4/9 ≈ 0.44: valid at ε = 0.45, invalid at ε = 0.40.
        let hi = validate_aoc(&t, AttrSet::EMPTY, 2, 5, 0.45, AocStrategy::Optimal);
        assert!(hi.is_valid());
        assert!((hi.factor().unwrap() - 4.0 / 9.0).abs() < 1e-12);
        let lo = validate_aoc(&t, AttrSet::EMPTY, 2, 5, 0.40, AocStrategy::Optimal);
        assert!(!lo.is_valid());
    }

    #[test]
    fn iterative_misses_near_threshold_aoc() {
        // The pattern behind Exp-4: the iterative algorithm overestimates
        // e(sal ~ tax) as 5/9 ≈ 0.56, so at ε = 0.5 it wrongly rejects.
        let t = RankedTable::from_table(&employee_table());
        let opt = validate_aoc(&t, AttrSet::EMPTY, 2, 5, 0.5, AocStrategy::Optimal);
        let it = validate_aoc(&t, AttrSet::EMPTY, 2, 5, 0.5, AocStrategy::Iterative);
        assert!(opt.is_valid());
        assert!(!it.is_valid());
    }

    #[test]
    fn aofd_and_aod_high_level() {
        let t = RankedTable::from_table(&employee_table());
        // {pos,exp}: [] |-> sal has factor 1/9.
        let ofd = validate_aofd(&t, AttrSet::from_attrs([0, 1]), 2, 0.2);
        assert!(ofd.is_valid());
        assert_eq!(ofd.removed, Some(1));
        // {}: sal |-> taxGrp holds exactly.
        let od = validate_aod(&t, AttrSet::EMPTY, 2, 3, 0.0);
        assert!(od.is_valid());
        assert_eq!(od.removed, Some(0));
    }

    /// Strategy: a small table as two rank columns plus a context column
    /// with few distinct values, so contexts have multiple classes.
    fn small_instance() -> impl Strategy<Value = (Vec<u32>, Vec<u32>, Vec<u32>)> {
        (1usize..14).prop_flat_map(|n| {
            (
                proptest::collection::vec(0u32..6, n),
                proptest::collection::vec(0u32..6, n),
                proptest::collection::vec(0u32..3, n),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Theorem 3.3: Algorithm 2 finds a *minimal* removal set.
        #[test]
        fn optimal_oc_matches_brute_force((a, b, ctx_vals) in small_instance()) {
            let n = a.len();
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let mut v = OcValidator::new();
            let fast = v.min_removal_optimal(&ctx, &a, &b, usize::MAX).unwrap();
            let brute = brute_min_removal_oc(&ctx, &a, &b);
            prop_assert_eq!(fast, brute);
            prop_assert!(fast <= n);
        }

        /// The OD variant (desc tie-break) is minimal for swap+split removal.
        #[test]
        fn optimal_od_matches_brute_force((a, b, ctx_vals) in small_instance()) {
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let mut v = OcValidator::new();
            let fast = v.min_removal_od(&ctx, &a, &b, usize::MAX).unwrap();
            let brute = brute_min_removal_od(&ctx, &a, &b);
            prop_assert_eq!(fast, brute);
        }

        /// The iterative baseline never *under*estimates (it may overestimate).
        #[test]
        fn iterative_upper_bounds_optimal((a, b, ctx_vals) in small_instance()) {
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let mut v = OcValidator::new();
            let opt = v.min_removal_optimal(&ctx, &a, &b, usize::MAX).unwrap();
            let it = v.min_removal_iterative(&ctx, &a, &b, usize::MAX).unwrap();
            prop_assert!(it >= opt);
        }

        /// The iterative algorithm's removal set, while possibly non-minimal,
        /// is still a *removal set*: removing it makes the OC hold.
        #[test]
        fn iterative_set_repairs_the_oc((a, b, ctx_vals) in small_instance()) {
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let mut v = OcValidator::new();
            let set = v.removal_set_iterative(&ctx, &a, &b);
            let keep: Vec<u32> = (0..a.len() as u32).filter(|r| !set.contains(r)).collect();
            let a2: Vec<u32> = keep.iter().map(|&r| a[r as usize]).collect();
            let b2: Vec<u32> = keep.iter().map(|&r| b[r as usize]).collect();
            let c2: Vec<u32> = keep.iter().map(|&r| ctx_vals[r as usize]).collect();
            let ctx2 = aod_partition::Partition::from_ranks(&c2, 3);
            prop_assert!(v.exact_oc_holds(&ctx2, &a2, &b2));
        }

        /// Optimal removal sets repair the OC and match the reported size.
        #[test]
        fn optimal_set_repairs_and_matches_count((a, b, ctx_vals) in small_instance()) {
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let mut v = OcValidator::new();
            let count = v.min_removal_optimal(&ctx, &a, &b, usize::MAX).unwrap();
            let set = v.removal_set_optimal(&ctx, &a, &b);
            prop_assert_eq!(set.len(), count);
            let keep: Vec<u32> = (0..a.len() as u32).filter(|r| !set.contains(r)).collect();
            let a2: Vec<u32> = keep.iter().map(|&r| a[r as usize]).collect();
            let b2: Vec<u32> = keep.iter().map(|&r| b[r as usize]).collect();
            let c2: Vec<u32> = keep.iter().map(|&r| ctx_vals[r as usize]).collect();
            let ctx2 = aod_partition::Partition::from_ranks(&c2, 3);
            prop_assert!(v.exact_oc_holds(&ctx2, &a2, &b2));
        }

        /// Exact validation agrees with "minimal removal set is empty".
        #[test]
        fn exact_iff_zero_removals((a, b, ctx_vals) in small_instance()) {
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let mut v = OcValidator::new();
            let holds = v.exact_oc_holds(&ctx, &a, &b);
            let removed = v.min_removal_optimal(&ctx, &a, &b, usize::MAX).unwrap();
            prop_assert_eq!(holds, removed == 0);
            let od_holds = v.exact_od_holds(&ctx, &a, &b);
            let od_removed = v.min_removal_od(&ctx, &a, &b, usize::MAX).unwrap();
            prop_assert_eq!(od_holds, od_removed == 0);
        }

        /// OCs are symmetric (Definition 2.3): validating A ~ B and B ~ A
        /// yields the same minimal removal size.
        #[test]
        fn oc_is_symmetric((a, b, ctx_vals) in small_instance()) {
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let mut v = OcValidator::new();
            let ab = v.min_removal_optimal(&ctx, &a, &b, usize::MAX).unwrap();
            let ba = v.min_removal_optimal(&ctx, &b, &a, usize::MAX).unwrap();
            prop_assert_eq!(ab, ba);
        }

        /// OFD minimal removal matches a brute-force majority count.
        #[test]
        fn ofd_matches_majority_rule((a, _b, ctx_vals) in small_instance()) {
            let ctx = aod_partition::Partition::from_ranks(&ctx_vals, 3);
            let fast = min_removal_ofd(&ctx, &a, 6, usize::MAX).unwrap();
            let mut brute = 0usize;
            for class in ctx.classes() {
                let mut counts = [0usize; 6];
                for &row in class {
                    counts[a[row as usize] as usize] += 1;
                }
                brute += class.len() - counts.iter().max().unwrap();
            }
            prop_assert_eq!(fast, brute);
        }
    }
}
