//! List-based order dependency validation (`X |-> Y` for attribute *lists*).
//!
//! Footnote 1 of the paper: the LNDS machinery extends to list-based ODs "by
//! ordering tuples in ascending order of X and breaking ties using the
//! descending order over Y". Both sides are lexicographic orders over
//! projections, i.e. total preorders, so we first **rank-encode each list
//! projection into a synthetic column** and then reuse the two-column
//! validators of [`crate::oc`]:
//!
//! * a *swap* w.r.t. `X |-> Y` is `s ≺_X t ∧ t ≺_Y s` — visible on the
//!   encoded ranks;
//! * a *split* is `s =_X t ∧ s ≠_Y t` — likewise.
//!
//! The list-based OC `X ~ Y` (no FD part) maps to the swap-only validator
//! the same way: by Theorem 4.2 of [Szlichta et al. '12], `X ~ Y` holds iff
//! the instance contains no swap w.r.t. `X`/`Y`.

use crate::oc::OcValidator;
use aod_partition::Partition;
use aod_table::RankedTable;

/// Rank-encodes the lexicographic projection of each row onto the attribute
/// list `attrs`: returns dense ranks (and their count) such that
/// `rank(s) < rank(t)` iff `s ≺_attrs t` and `rank(s) == rank(t)` iff
/// `s =_attrs t` (Definition 2.1's nested order).
///
/// `O(n log n · |attrs|)`.
pub fn projection_ranks(table: &RankedTable, attrs: &[usize]) -> (Vec<u32>, u32) {
    let n = table.n_rows();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let cmp = |&x: &u32, &y: &u32| {
        for &a in attrs {
            let c = table.rank(x as usize, a).cmp(&table.rank(y as usize, a));
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    };
    order.sort_unstable_by(cmp);
    let mut ranks = vec![0u32; n];
    let mut next = 0u32;
    for i in 0..n {
        if i > 0 && cmp(&order[i - 1], &order[i]) != std::cmp::Ordering::Equal {
            next += 1;
        }
        ranks[order[i] as usize] = next;
    }
    (ranks, next + 1)
}

/// Exact validation of the list-based OD `X |-> Y` (Definition 2.2):
/// for all `s, t`, `s ⪯_X t` implies `s ⪯_Y t`.
pub fn list_od_holds(table: &RankedTable, x: &[usize], y: &[usize]) -> bool {
    let (xr, _) = projection_ranks(table, x);
    let (yr, _) = projection_ranks(table, y);
    let ctx = Partition::unit(table.n_rows());
    OcValidator::new().exact_od_holds(&ctx, &xr, &yr)
}

/// Exact validation of the list-based OC `X ~ Y` (Definition 2.3).
pub fn list_oc_holds(table: &RankedTable, x: &[usize], y: &[usize]) -> bool {
    let (xr, _) = projection_ranks(table, x);
    let (yr, _) = projection_ranks(table, y);
    let ctx = Partition::unit(table.n_rows());
    OcValidator::new().exact_oc_holds(&ctx, &xr, &yr)
}

/// Minimal removal-set size for the approximate list-based OD `X |-> Y`,
/// with early exit (`None` once above `limit`).
pub fn list_od_min_removal(
    table: &RankedTable,
    x: &[usize],
    y: &[usize],
    limit: usize,
) -> Option<usize> {
    let (xr, _) = projection_ranks(table, x);
    let (yr, _) = projection_ranks(table, y);
    let ctx = Partition::unit(table.n_rows());
    OcValidator::new().min_removal_od(&ctx, &xr, &yr, limit)
}

/// Minimal removal set (ascending row ids) for the approximate list-based
/// OD `X |-> Y`.
pub fn list_od_removal_set(table: &RankedTable, x: &[usize], y: &[usize]) -> Vec<u32> {
    let (xr, _) = projection_ranks(table, x);
    let (yr, _) = projection_ranks(table, y);
    let ctx = Partition::unit(table.n_rows());
    OcValidator::new().removal_set_od(&ctx, &xr, &yr)
}

/// Minimal removal-set size for the approximate list-based OC `X ~ Y`.
pub fn list_oc_min_removal(
    table: &RankedTable,
    x: &[usize],
    y: &[usize],
    limit: usize,
) -> Option<usize> {
    let (xr, _) = projection_ranks(table, x);
    let (yr, _) = projection_ranks(table, y);
    let ctx = Partition::unit(table.n_rows());
    OcValidator::new().min_removal_optimal(&ctx, &xr, &yr, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_table::{employee_table, RankedTable, Table, Value};

    fn employee() -> RankedTable {
        RankedTable::from_table(&employee_table())
    }

    const POS: usize = 0;
    const EXP: usize = 1;
    const SAL: usize = 2;
    const TAXGRP: usize = 3;

    #[test]
    fn projection_ranks_single_attr_match_column_ranks() {
        let t = employee();
        let (r, k) = projection_ranks(&t, &[SAL]);
        assert_eq!(r, t.column(SAL).ranks());
        assert_eq!(k, t.column(SAL).n_distinct());
    }

    #[test]
    fn projection_ranks_are_lexicographic() {
        let t = employee();
        let (r, _) = projection_ranks(&t, &[POS, EXP]);
        // (dev,-1)=t8 < (dev,1)=t3 < (dev,3)=t5 < (dev,5)={t6,t7} <
        // (dir,8)=t9 < (sec,1)=t1 < (sec,3)=t2 < (sec,5)=t4
        assert_eq!(r[7], 0); // t8
        assert_eq!(r[2], 1); // t3
        assert_eq!(r[4], 2); // t5
        assert_eq!(r[5], 3); // t6
        assert_eq!(r[6], 3); // t7 ties with t6
        assert_eq!(r[8], 4); // t9
        assert_eq!(r[0], 5); // t1
    }

    #[test]
    fn empty_list_projects_to_one_class() {
        let t = employee();
        let (r, k) = projection_ranks(&t, &[]);
        assert!(r.iter().all(|&v| v == 0));
        assert_eq!(k, 1);
    }

    #[test]
    fn sal_orders_taxgrp_as_list_od() {
        let t = employee();
        assert!(list_od_holds(&t, &[SAL], &[TAXGRP]));
        // but not the converse (no FD taxGrp -> sal).
        assert!(!list_od_holds(&t, &[TAXGRP], &[SAL]));
        // order-compatibility holds both ways (Example 2.4).
        assert!(list_oc_holds(&t, &[TAXGRP], &[SAL]));
        assert!(list_oc_holds(&t, &[SAL], &[TAXGRP]));
    }

    #[test]
    fn intro_example_pos_exp_vs_pos_sal() {
        // Section 1.1: e([pos,exp] ~ [pos,sal]) = 1/9 with removal set {t8}.
        let t = employee();
        assert_eq!(
            list_oc_min_removal(&t, &[POS, EXP], &[POS, SAL], usize::MAX),
            Some(1)
        );
        // The OD [pos,exp] |-> [pos,sal] additionally suffers the t6/t7
        // split, so it needs one more removal.
        assert_eq!(
            list_od_min_removal(&t, &[POS, EXP], &[POS, SAL], usize::MAX),
            Some(2)
        );
        let set = list_od_removal_set(&t, &[POS, EXP], &[POS, SAL]);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&7)); // t8 must go (swap)
    }

    #[test]
    fn removal_set_actually_repairs_the_od() {
        let t = employee();
        let set = list_od_removal_set(&t, &[POS, EXP], &[POS, SAL]);
        let keep: Vec<usize> = (0..9).filter(|&r| !set.contains(&(r as u32))).collect();
        let repaired = RankedTable::from_table(&employee_table().take_rows(&keep));
        assert!(list_od_holds(&repaired, &[POS, EXP], &[POS, SAL]));
    }

    #[test]
    fn trivial_ods() {
        let t = employee();
        // X |-> X always holds; X |-> [] always holds; [] |-> Y holds iff
        // the whole table is sorted-equal on Y, i.e. Y constant.
        assert!(list_od_holds(&t, &[SAL], &[SAL]));
        assert!(list_od_holds(&t, &[SAL], &[]));
        assert!(!list_od_holds(&t, &[], &[SAL]));
        let constant = RankedTable::from_table(
            &Table::from_rows(&["k"], vec![vec![Value::Int(1)], vec![Value::Int(1)]]).unwrap(),
        );
        assert!(list_od_holds(&constant, &[], &[0]));
    }

    #[test]
    fn prefix_strengthening() {
        // [A] |-> [A, B] holds iff A -> B as an FD... here: [sal] |-> [sal, pos]
        // holds because sal is a key.
        let t = employee();
        assert!(list_od_holds(&t, &[SAL], &[SAL, POS]));
    }
}
