//! Brute-force oracles for property testing.
//!
//! These compute *exact* minimal removal sets by exhaustive subset search.
//! They are exponential (`O(2^m · m²)` per context class) and guarded to
//! small classes, but provide ground truth for:
//!
//! * Theorem 3.3 — the LNDS validator's removal sets are minimal;
//! * the iterative baseline's overestimation (never an *under*estimate);
//! * the OD variant's split+swap handling.
//!
//! They live in the library (not `#[cfg(test)]`) so that integration tests
//! and the property suites of other crates can reuse them.

use crate::swap::{is_split, is_swap};
use aod_partition::Partition;

/// Largest class size the brute-force search accepts.
pub const MAX_BRUTE_CLASS: usize = 20;

/// What counts as a violation between two kept tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Swaps only — validates OCs `A ~ B`.
    SwapOnly,
    /// Swaps and splits — validates ODs `A |-> B`.
    SwapOrSplit,
}

fn violates(kind: ViolationKind, s: (u32, u32), t: (u32, u32)) -> bool {
    match kind {
        ViolationKind::SwapOnly => is_swap(s, t),
        ViolationKind::SwapOrSplit => is_swap(s, t) || is_split(s, t),
    }
}

/// Exact minimum number of pairs to drop from `pairs` so no violation
/// remains, by exhaustive subset enumeration.
///
/// # Panics
/// If `pairs.len() > MAX_BRUTE_CLASS`.
pub fn brute_min_removal_pairs(pairs: &[(u32, u32)], kind: ViolationKind) -> usize {
    let m = pairs.len();
    assert!(
        m <= MAX_BRUTE_CLASS,
        "brute force capped at {MAX_BRUTE_CLASS} tuples"
    );
    if m == 0 {
        return 0;
    }
    // Precompute the conflict graph.
    let mut conflict = vec![0u32; m];
    for i in 0..m {
        for j in 0..m {
            if i != j && violates(kind, pairs[i], pairs[j]) {
                conflict[i] |= 1 << j;
            }
        }
    }
    let mut best_keep = 0usize;
    for mask in 0u32..(1u32 << m) {
        let keep = mask.count_ones() as usize;
        if keep <= best_keep {
            continue;
        }
        let mut ok = true;
        let mut probe = mask;
        while probe != 0 {
            let i = probe.trailing_zeros() as usize;
            probe &= probe - 1;
            if conflict[i] & mask != 0 {
                ok = false;
                break;
            }
        }
        if ok {
            best_keep = keep;
        }
    }
    m - best_keep
}

/// Exact minimal removal-set size for the AOC `ctx: A ~ B` — per-class
/// brute force, summed (classes are independent; see the proof of
/// Theorem 3.3).
pub fn brute_min_removal_oc(ctx: &Partition, a_ranks: &[u32], b_ranks: &[u32]) -> usize {
    brute_min_removal(ctx, a_ranks, b_ranks, ViolationKind::SwapOnly)
}

/// Exact minimal removal-set size for the canonical AOD `ctx: A |-> B`.
pub fn brute_min_removal_od(ctx: &Partition, a_ranks: &[u32], b_ranks: &[u32]) -> usize {
    brute_min_removal(ctx, a_ranks, b_ranks, ViolationKind::SwapOrSplit)
}

fn brute_min_removal(
    ctx: &Partition,
    a_ranks: &[u32],
    b_ranks: &[u32],
    kind: ViolationKind,
) -> usize {
    let mut total = 0usize;
    let mut pairs = Vec::new();
    for class in ctx.classes() {
        pairs.clear();
        pairs.extend(
            class
                .iter()
                .map(|&row| (a_ranks[row as usize], b_ranks[row as usize])),
        );
        total += brute_min_removal_pairs(&pairs, kind);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oc::OcValidator;
    use aod_table::{employee_table, RankedTable};

    #[test]
    fn brute_matches_paper_example() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let sal = t.column(2).ranks();
        let tax = t.column(5).ranks();
        assert_eq!(brute_min_removal_oc(&ctx, sal, tax), 4); // Example 2.15
    }

    #[test]
    fn empty_and_clean_classes() {
        assert_eq!(brute_min_removal_pairs(&[], ViolationKind::SwapOnly), 0);
        let clean = [(0, 0), (1, 1), (2, 2)];
        assert_eq!(brute_min_removal_pairs(&clean, ViolationKind::SwapOnly), 0);
        assert_eq!(
            brute_min_removal_pairs(&clean, ViolationKind::SwapOrSplit),
            0
        );
    }

    #[test]
    fn splits_matter_only_for_ods() {
        let split = [(0, 0), (0, 1)];
        assert_eq!(brute_min_removal_pairs(&split, ViolationKind::SwapOnly), 0);
        assert_eq!(
            brute_min_removal_pairs(&split, ViolationKind::SwapOrSplit),
            1
        );
    }

    #[test]
    fn optimal_validator_agrees_with_brute_on_employee_pairs() {
        let t = RankedTable::from_table(&employee_table());
        let ctx = Partition::unit(9);
        let mut v = OcValidator::new();
        for a in 0..7 {
            for b in 0..7 {
                if a == b {
                    continue;
                }
                let (ar, br) = (t.column(a).ranks(), t.column(b).ranks());
                assert_eq!(
                    v.min_removal_optimal(&ctx, ar, br, usize::MAX).unwrap(),
                    brute_min_removal_oc(&ctx, ar, br),
                    "OC cols {a},{b}"
                );
                assert_eq!(
                    v.min_removal_od(&ctx, ar, br, usize::MAX).unwrap(),
                    brute_min_removal_od(&ctx, ar, br),
                    "OD cols {a},{b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn brute_rejects_large_classes() {
        let pairs = vec![(0u32, 0u32); MAX_BRUTE_CLASS + 1];
        brute_min_removal_pairs(&pairs, ViolationKind::SwapOnly);
    }
}
