//! Order-compatibility validators: exact, optimal (Algorithm 2) and
//! iterative (Algorithm 1).
//!
//! All three share the same per-class pipeline — gather the context class's
//! `(rank_A, rank_B)` pairs, sort by `[A ASC, B ASC]` — and differ in what
//! they do with the sorted `B` projection:
//!
//! * **exact** — scan: the OC holds iff the projection is non-decreasing;
//! * **optimal** — LNDS: the complement of a longest non-decreasing
//!   subsequence is a *minimal* removal set (Theorem 3.3), `O(m log m)`;
//! * **iterative** — the PVLDB'17 baseline: repeatedly drop a tuple with the
//!   most swaps, `O(m log m + ε m²)`, *not* minimal (Example 3.1).
//!
//! The same machinery with a descending `B` tie-break validates canonical
//! ODs `X: A |-> B` (Section 3.3) — see [`PairMode::OdDescB`].

use crate::swap::{is_swap, pack_asc, pack_desc_b, unpack_a, unpack_b_asc, unpack_b_desc};
use aod_lis::{lnds_indices, lnds_length_with, per_element_inversions_compressed};
use aod_partition::Partition;

/// How `(A, B)` pairs are ordered before the projection step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairMode {
    /// `[A ASC, B ASC]` — validates the OC `A ~ B` (swaps only).
    OcAsc,
    /// `[A ASC, B DESC]` — validates the OD `A |-> B` (swaps *and* splits):
    /// within an equal-`A` run the descending tie-break forces any
    /// non-decreasing selection to be `B`-constant.
    OdDescB,
}

impl PairMode {
    #[inline]
    fn pack(self, a: u32, b: u32) -> u64 {
        match self {
            PairMode::OcAsc => pack_asc(a, b),
            PairMode::OdDescB => pack_desc_b(a, b),
        }
    }

    #[inline]
    fn unpack_b(self, key: u64) -> u32 {
        match self {
            PairMode::OcAsc => unpack_b_asc(key),
            PairMode::OdDescB => unpack_b_desc(key),
        }
    }
}

/// Reusable validator holding scratch buffers (one per discovery run /
/// thread; the perf-book "workhorse collection" pattern keeps the hot path
/// allocation-free across candidates).
#[derive(Debug, Default)]
pub struct OcValidator {
    keys: Vec<u64>,
    rows: Vec<u32>,
    bbuf: Vec<u32>,
    tails: Vec<u32>,
}

impl OcValidator {
    /// A fresh validator.
    pub fn new() -> OcValidator {
        OcValidator::default()
    }

    /// Gathers and sorts one class; fills `self.keys` (packed pairs) and,
    /// when `track_rows`, `self.rows` such that `rows[i]` is the source row
    /// of `keys[i]` after sorting.
    fn gather_class(
        &mut self,
        class: &[u32],
        a_ranks: &[u32],
        b_ranks: &[u32],
        mode: PairMode,
        track_rows: bool,
    ) {
        self.keys.clear();
        self.keys.extend(
            class
                .iter()
                .map(|&row| mode.pack(a_ranks[row as usize], b_ranks[row as usize])),
        );
        if track_rows {
            // Sort an index permutation so row ids follow their keys.
            let mut perm: Vec<u32> = (0..class.len() as u32).collect();
            perm.sort_unstable_by_key(|&i| self.keys[i as usize]);
            self.rows.clear();
            self.rows.extend(perm.iter().map(|&i| class[i as usize]));
            let keys = std::mem::take(&mut self.keys);
            let mut sorted: Vec<u64> = perm.iter().map(|&i| keys[i as usize]).collect();
            std::mem::swap(&mut self.keys, &mut sorted);
        } else {
            self.keys.sort_unstable();
        }
        self.bbuf.clear();
        self.bbuf
            .extend(self.keys.iter().map(|&k| mode.unpack_b(k)));
    }

    /// Exact validation of `ctx: A ~ B`: `true` iff no class contains a swap.
    pub fn exact_oc_holds(&mut self, ctx: &Partition, a_ranks: &[u32], b_ranks: &[u32]) -> bool {
        self.exact_holds(ctx, a_ranks, b_ranks, PairMode::OcAsc)
    }

    /// Exact validation of the canonical OD `ctx: A |-> B` (no swap, no split).
    pub fn exact_od_holds(&mut self, ctx: &Partition, a_ranks: &[u32], b_ranks: &[u32]) -> bool {
        self.exact_holds(ctx, a_ranks, b_ranks, PairMode::OdDescB)
    }

    fn exact_holds(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        mode: PairMode,
    ) -> bool {
        for class in ctx.classes() {
            self.gather_class(class, a_ranks, b_ranks, mode, false);
            if !self.bbuf.windows(2).all(|w| w[0] <= w[1]) {
                return false;
            }
        }
        true
    }

    /// **Algorithm 2** — minimal removal-set *size* for the AOC
    /// `ctx: A ~ B`, with early exit.
    ///
    /// Returns `Some(count)` when a minimal removal set of size
    /// `count <= limit` exists, `None` as soon as the accumulated count
    /// exceeds `limit` (pass `usize::MAX` for the exact minimum).
    pub fn min_removal_optimal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        self.min_removal_lnds(ctx, a_ranks, b_ranks, PairMode::OcAsc, limit)
    }

    /// **Algorithm 2 with the Section 3.3 tie-break** — minimal removal-set
    /// size for the canonical AOD `ctx: A |-> B`.
    pub fn min_removal_od(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        self.min_removal_lnds(ctx, a_ranks, b_ranks, PairMode::OdDescB, limit)
    }

    fn min_removal_lnds(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        mode: PairMode,
        limit: usize,
    ) -> Option<usize> {
        let mut removed = 0usize;
        for class in ctx.classes() {
            self.gather_class(class, a_ranks, b_ranks, mode, false);
            // Disjoint field borrows: the LNDS reads `bbuf`, reuses `tails`.
            removed += class.len() - lnds_length_with(&self.bbuf, &mut self.tails);
            if removed > limit {
                return None;
            }
        }
        Some(removed)
    }

    /// **Algorithm 2** returning the actual minimal removal set (ascending
    /// row ids) for the AOC `ctx: A ~ B`.
    pub fn removal_set_optimal(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
    ) -> Vec<u32> {
        self.removal_set_lnds(ctx, a_ranks, b_ranks, PairMode::OcAsc)
    }

    /// Minimal removal set for the canonical AOD `ctx: A |-> B`.
    pub fn removal_set_od(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
    ) -> Vec<u32> {
        self.removal_set_lnds(ctx, a_ranks, b_ranks, PairMode::OdDescB)
    }

    fn removal_set_lnds(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        mode: PairMode,
    ) -> Vec<u32> {
        let mut removal = Vec::new();
        for class in ctx.classes() {
            self.gather_class(class, a_ranks, b_ranks, mode, true);
            let keep = lnds_indices(&self.bbuf);
            let mut keep_iter = keep.iter().peekable();
            for (i, &row) in self.rows.iter().enumerate() {
                match keep_iter.peek() {
                    Some(&&k) if k as usize == i => {
                        keep_iter.next();
                    }
                    _ => removal.push(row),
                }
            }
        }
        removal.sort_unstable();
        removal
    }

    /// **Algorithm 1** — the iterative baseline: removal-set *size*
    /// (possibly an overestimate) for the AOC `ctx: A ~ B`, with early exit.
    ///
    /// Returns `None` as soon as the accumulated removals exceed `limit`
    /// (line 14 of the paper's pseudocode returns "INVALID").
    pub fn min_removal_iterative(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
        limit: usize,
    ) -> Option<usize> {
        let mut removed = 0usize;
        for class in ctx.classes() {
            self.gather_class(class, a_ranks, b_ranks, PairMode::OcAsc, false);
            removed += self.iterative_class(None, limit.checked_sub(removed)?)?;
        }
        Some(removed)
    }

    /// **Algorithm 1** returning the removal set it constructs (ascending
    /// row ids). No early exit — used to measure overestimation (Exp-4).
    pub fn removal_set_iterative(
        &mut self,
        ctx: &Partition,
        a_ranks: &[u32],
        b_ranks: &[u32],
    ) -> Vec<u32> {
        let mut removal = Vec::new();
        for class in ctx.classes() {
            self.gather_class(class, a_ranks, b_ranks, PairMode::OcAsc, true);
            let rows = std::mem::take(&mut self.rows);
            let mut sink = Vec::new();
            self.iterative_class(Some(&mut sink), usize::MAX)
                .expect("limit is MAX");
            removal.extend(sink.iter().map(|&i| rows[i as usize]));
            self.rows = rows;
        }
        removal.sort_unstable();
        removal
    }

    /// Runs Algorithm 1's inner loop on the gathered class
    /// (`self.keys`/`self.bbuf` already `[A ASC, B ASC]`-sorted).
    ///
    /// Removes, among live tuples, a leftmost tuple with the maximum swap
    /// count until the class is swap-free; updates the remaining counts by
    /// rescanning (lines 9–11). Appends removed *positions* to `sink` when
    /// given. Returns `None` once more than `budget` tuples were removed.
    fn iterative_class(&mut self, mut sink: Option<&mut Vec<u32>>, budget: usize) -> Option<usize> {
        let m = self.keys.len();
        // Initial swap counts: strict inversions of the B projection
        // (equal-A pairs are tie-broken ascending, so they never invert;
        // equal-B pairs are not swaps — see Algorithm 1 line 4).
        let mut counts: Vec<u32> = per_element_inversions_compressed(&self.bbuf);
        let mut alive = vec![true; m];
        let mut removed = 0usize;
        loop {
            let mut max_pos = usize::MAX;
            let mut max_cnt = 0u32;
            for i in 0..m {
                if alive[i] && counts[i] > max_cnt {
                    max_cnt = counts[i];
                    max_pos = i;
                }
            }
            if max_cnt == 0 {
                return Some(removed);
            }
            alive[max_pos] = false;
            removed += 1;
            if removed > budget {
                return None;
            }
            if let Some(sink) = sink.as_deref_mut() {
                sink.push(max_pos as u32);
            }
            let dead = (
                unpack_a(self.keys[max_pos]),
                unpack_b_asc(self.keys[max_pos]),
            );
            for i in 0..m {
                if alive[i] {
                    let live = (unpack_a(self.keys[i]), unpack_b_asc(self.keys[i]));
                    if is_swap(live, dead) {
                        counts[i] -= 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aod_partition::Partition;
    use aod_table::{employee_table, RankedTable};

    fn employee() -> RankedTable {
        RankedTable::from_table(&employee_table())
    }

    fn unit_ctx(n: usize) -> Partition {
        Partition::unit(n)
    }

    /// Column indices in Table 1.
    const POS: usize = 0;
    const EXP: usize = 1;
    const SAL: usize = 2;
    const TAXGRP: usize = 3;
    const TAX: usize = 5;
    const BONUS: usize = 6;

    fn ranks(t: &RankedTable, c: usize) -> &[u32] {
        t.column(c).ranks()
    }

    #[test]
    fn exact_oc_taxgrp_sal_holds() {
        // Example 2.4: taxGrp ~ sal holds in Table 1.
        let t = employee();
        let mut v = OcValidator::new();
        assert!(v.exact_oc_holds(&unit_ctx(9), ranks(&t, TAXGRP), ranks(&t, SAL)));
        // and is symmetric
        assert!(v.exact_oc_holds(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAXGRP)));
    }

    #[test]
    fn exact_oc_sal_tax_fails() {
        // The dirty `perc` column breaks sal ~ tax (Section 1.1).
        let t = employee();
        let mut v = OcValidator::new();
        assert!(!v.exact_oc_holds(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX)));
    }

    #[test]
    fn optimal_reproduces_example_3_2() {
        // e(sal ~ tax) = 4/9: minimal removal set {t1, t2, t4, t6}.
        let t = employee();
        let mut v = OcValidator::new();
        let removed = v
            .min_removal_optimal(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX), usize::MAX)
            .unwrap();
        assert_eq!(removed, 4);
        let set = v.removal_set_optimal(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX));
        assert_eq!(set, vec![0, 1, 3, 5]); // t1, t2, t4, t6 (0-based)
    }

    #[test]
    fn iterative_reproduces_example_3_1_overestimate() {
        // Algorithm 1 removes {t3, t4, t5, t6, t7}: 5 tuples, not 4.
        let t = employee();
        let mut v = OcValidator::new();
        let removed = v
            .min_removal_iterative(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX), usize::MAX)
            .unwrap();
        assert_eq!(removed, 5);
        let set = v.removal_set_iterative(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX));
        assert_eq!(set, vec![2, 3, 4, 5, 6]); // t3, t4, t5, t6, t7 (0-based)
    }

    #[test]
    fn early_exit_when_budget_exceeded() {
        let t = employee();
        let mut v = OcValidator::new();
        assert_eq!(
            v.min_removal_optimal(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX), 3),
            None
        );
        assert_eq!(
            v.min_removal_iterative(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX), 3),
            None
        );
        // budget exactly at the answer passes
        assert_eq!(
            v.min_removal_optimal(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX), 4),
            Some(4)
        );
    }

    #[test]
    fn contexted_oc_example_2_12() {
        // {pos}: sal ~ bonus holds in Table 1.
        let t = employee();
        let ctx = Partition::from_ranked_column(t.column(POS));
        let mut v = OcValidator::new();
        assert!(v.exact_oc_holds(&ctx, ranks(&t, SAL), ranks(&t, BONUS)));
        assert_eq!(
            v.min_removal_optimal(&ctx, ranks(&t, SAL), ranks(&t, BONUS), usize::MAX),
            Some(0)
        );
    }

    #[test]
    fn contexted_oc_intro_example() {
        // Section 1.1: for pos,exp ~ pos,sal i.e. {pos}: exp ~ sal, the
        // minimal removal set is {t8} (the dev with -1 experience).
        let t = employee();
        let ctx = Partition::from_ranked_column(t.column(POS));
        let mut v = OcValidator::new();
        let removed = v
            .min_removal_optimal(&ctx, ranks(&t, EXP), ranks(&t, SAL), usize::MAX)
            .unwrap();
        assert_eq!(removed, 1);
        let set = v.removal_set_optimal(&ctx, ranks(&t, EXP), ranks(&t, SAL));
        assert_eq!(set, vec![7]); // t8
    }

    #[test]
    fn exact_od_detects_splits() {
        // {}: pos |-> taxGrp? pos has dev < dir < sec lexicographically;
        // within `dev` rows taxGrp varies (A, B, C) -> split -> fails.
        let t = employee();
        let mut v = OcValidator::new();
        assert!(!v.exact_od_holds(&unit_ctx(9), ranks(&t, POS), ranks(&t, TAXGRP)));
        // sal |-> taxGrp holds (the motivating OD of Section 1.1).
        assert!(v.exact_od_holds(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAXGRP)));
    }

    #[test]
    fn od_removal_counts_splits_and_swaps() {
        // A values all equal: pure split case. B = [0,0,1] keeps the two 0s.
        let ctx = unit_ctx(3);
        let a = vec![5u32, 5, 5];
        let b = vec![0u32, 0, 1];
        let mut v = OcValidator::new();
        assert_eq!(v.min_removal_od(&ctx, &a, &b, usize::MAX), Some(1));
        // As an OC this needs no removals at all.
        assert_eq!(v.min_removal_optimal(&ctx, &a, &b, usize::MAX), Some(0));
    }

    #[test]
    fn od_removal_set_is_consistent_with_count() {
        let t = employee();
        let mut v = OcValidator::new();
        let ctx = Partition::from_ranked_column(t.column(POS));
        let count = v
            .min_removal_od(&ctx, ranks(&t, EXP), ranks(&t, SAL), usize::MAX)
            .unwrap();
        let set = v.removal_set_od(&ctx, ranks(&t, EXP), ranks(&t, SAL));
        assert_eq!(set.len(), count);
    }

    #[test]
    fn removing_the_removal_set_validates_the_oc() {
        let t = employee();
        let mut v = OcValidator::new();
        let set = v.removal_set_optimal(&unit_ctx(9), ranks(&t, SAL), ranks(&t, TAX));
        // Rebuild table without removed rows and re-validate.
        let keep: Vec<usize> = (0..9).filter(|&r| !set.contains(&(r as u32))).collect();
        let table = employee_table().take_rows(&keep);
        let ranked = RankedTable::from_table(&table);
        assert!(v.exact_oc_holds(
            &unit_ctx(keep.len()),
            ranked.column(SAL).ranks(),
            ranked.column(TAX).ranks()
        ));
    }

    #[test]
    fn iterative_never_beats_optimal() {
        // On every pair of columns of Table 1 (empty context).
        let t = employee();
        let mut v = OcValidator::new();
        for a in 0..7 {
            for b in 0..7 {
                if a == b {
                    continue;
                }
                let opt = v
                    .min_removal_optimal(&unit_ctx(9), ranks(&t, a), ranks(&t, b), usize::MAX)
                    .unwrap();
                let it = v
                    .min_removal_iterative(&unit_ctx(9), ranks(&t, a), ranks(&t, b), usize::MAX)
                    .unwrap();
                assert!(it >= opt, "cols {a},{b}: iterative {it} < optimal {opt}");
            }
        }
    }

    #[test]
    fn empty_context_partition_is_trivially_valid() {
        // A keyed context (stripped empty) has no swaps at all.
        let ctx = Partition::unit(1);
        let mut v = OcValidator::new();
        assert!(v.exact_oc_holds(&ctx, &[0], &[0]));
        assert_eq!(v.min_removal_optimal(&ctx, &[0], &[0], usize::MAX), Some(0));
    }
}
