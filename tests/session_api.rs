//! The streaming `DiscoverySession` API versus the one-shot `discover()`:
//! event replay must be lossless, cancellation/top-k must yield
//! well-formed flagged partial results, and stepping must be observable
//! level by level.

use aod::prelude::*;
use proptest::prelude::*;

/// A small random table: two payload columns and a low-cardinality
/// context column, so lattice contexts have multiple classes.
fn small_table() -> impl Strategy<Value = RankedTable> {
    (1usize..14)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0u32..6, n),
                proptest::collection::vec(0u32..6, n),
                proptest::collection::vec(0u32..3, n),
            )
        })
        .prop_map(|(a, b, c)| RankedTable::from_u32_columns(vec![a, b, c]))
}

/// Worker threads for the sessions under test. The CI parallel smoke job
/// sets `AOD_TEST_THREADS=4` to re-run this whole suite against the
/// work-stealing parallel driver — every assertion must keep passing
/// unchanged, which is exactly the engine's determinism contract.
fn test_threads() -> usize {
    std::env::var("AOD_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A fresh builder at the suite's thread count.
fn builder() -> DiscoveryBuilder {
    DiscoveryBuilder::new().parallelism(test_threads())
}

fn configs() -> Vec<DiscoveryConfig> {
    let mut out = vec![DiscoveryConfig::exact()];
    for eps in [0.0, 0.1, 0.3] {
        out.push(DiscoveryConfig::approximate(eps));
        out.push(DiscoveryConfig::approximate_iterative(eps));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replaying the event stream to completion yields bit-identical
    /// results to the one-shot `discover()` across ε ∈ {0, 0.1, 0.3} and
    /// both AOC strategies (plus exact mode).
    #[test]
    fn event_replay_is_bit_identical_to_one_shot(table in small_table()) {
        for config in configs() {
            let one_shot = discover(&table, &config);

            let mut session = DiscoveryBuilder::from_config(config.clone())
                .parallelism(test_threads())
                .build(&table);
            let mut streamed_ocs: Vec<OcDep> = Vec::new();
            let mut streamed_ofds: Vec<OfdDep> = Vec::new();
            let mut last_level = 0usize;
            for event in session.by_ref() {
                match event {
                    DiscoveryEvent::OcFound(dep) => streamed_ocs.push(dep),
                    DiscoveryEvent::OfdFound(dep) => streamed_ofds.push(dep),
                    DiscoveryEvent::LevelComplete(outcome) => {
                        prop_assert!(outcome.level > last_level);
                        last_level = outcome.level;
                    }
                    _ => {}
                }
            }
            let replayed = session.into_result();

            // The final result is bit-identical (deps are f64-carrying
            // structs compared with ==, so this covers factors/coverage).
            prop_assert_eq!(&replayed.ocs, &one_shot.ocs, "config {:?}", &config);
            prop_assert_eq!(&replayed.ofds, &one_shot.ofds, "config {:?}", &config);
            prop_assert_eq!(replayed.n_rows, one_shot.n_rows);
            prop_assert_eq!(replayed.n_attrs, one_shot.n_attrs);
            // And the event stream itself carried every dependency, in
            // driver order.
            prop_assert_eq!(&streamed_ocs, &one_shot.ocs);
            prop_assert_eq!(&streamed_ofds, &one_shot.ofds);
            prop_assert!(!replayed.is_partial());
        }
    }
}

/// The acceptance scenario: consume events, cancel after level 2, and get
/// partial results equal to a `max_level: Some(2)` one-shot run.
#[test]
fn cancel_after_level_two_equals_max_level_two() {
    let ranked = RankedTable::from_table(&employee_table());
    let capped = discover(
        &ranked,
        &DiscoveryConfig::approximate(0.15).with_max_level(2),
    );

    let mut session = builder().approximate(0.15).build(&ranked);
    let token = session.cancel_token();
    let mut saw_cancelled_event = false;
    for event in session.by_ref() {
        match event {
            DiscoveryEvent::LevelComplete(outcome) if outcome.level == 2 => token.cancel(),
            DiscoveryEvent::Cancelled { level } => {
                assert_eq!(level, 3, "cancellation lands at the next level");
                saw_cancelled_event = true;
            }
            _ => {}
        }
    }
    assert!(saw_cancelled_event);
    assert_eq!(session.stop_reason(), Some(StopReason::Cancelled));

    let partial = session.into_result();
    assert!(partial.n_ocs() > 0);
    assert_eq!(partial.ocs, capped.ocs);
    assert_eq!(partial.ofds, capped.ofds);
    // Cancelled runs are flagged partial; max-level runs are not.
    assert!(partial.is_partial() && partial.stats.stopped_early);
    assert!(!capped.is_partial());
}

#[test]
fn top_k_stops_early_with_flagged_prefix() {
    let ranked = RankedTable::from_table(&employee_table());
    let full = builder().approximate(0.15).run(&ranked);
    assert!(full.n_ocs() > 3, "need enough OCs for the scenario");

    let top = builder().approximate(0.15).top_k(3).build(&ranked);
    let result = top.run();
    assert_eq!(result.n_ocs(), 3);
    // Early exit serves a prefix of the full run's stream.
    assert_eq!(result.ocs, full.ocs[..3].to_vec());
    assert!(result.is_partial() && result.stats.stopped_early);
    assert!(!result.stats.timed_out);
}

#[test]
fn top_k_beyond_total_is_a_complete_run() {
    let ranked = RankedTable::from_table(&employee_table());
    let full = builder().approximate(0.15).run(&ranked);
    let generous = builder().approximate(0.15).top_k(10_000).run(&ranked);
    assert_eq!(generous.ocs, full.ocs);
    assert!(!generous.is_partial());
}

#[test]
fn pre_cancelled_session_returns_empty_flagged_results() {
    let ranked = RankedTable::from_table(&employee_table());
    let token = CancelToken::new();
    token.cancel();
    let session = builder()
        .approximate(0.2)
        .cancel_token(token)
        .build(&ranked);
    let result = session.run();
    assert_eq!(result.n_ocs() + result.n_ofds(), 0);
    assert!(result.is_partial() && result.stats.stopped_early);
}

#[test]
fn step_reports_level_outcomes_in_order() {
    let ranked = RankedTable::from_table(&employee_table());
    let mut session = builder().exact().record_events(false).build(&ranked);
    let mut levels = Vec::new();
    while let Some(outcome) = session.step() {
        levels.push(outcome.level);
        if outcome.stop.is_none() {
            assert!(outcome.completed);
        }
    }
    assert_eq!(session.stop_reason(), Some(StopReason::Exhausted));
    let expected: Vec<usize> = (1..=levels.len()).collect();
    assert_eq!(levels, expected);
    // Stepping a finished session is a no-op.
    assert!(session.step().is_none());
    let result = session.into_result();
    let one_shot = discover(&ranked, &DiscoveryConfig::exact());
    assert_eq!(result.ocs, one_shot.ocs);
    assert_eq!(result.ofds, one_shot.ofds);
}

#[test]
fn partial_snapshots_are_well_formed_mid_run() {
    let ranked = RankedTable::from_table(&employee_table());
    let mut session = builder().approximate(0.15).build(&ranked);
    session.step();
    session.step();
    let snapshot = session.result();
    assert!(snapshot.n_ofds() > 0 || snapshot.n_ocs() > 0);
    assert!(snapshot.ocs.iter().all(|d| d.level <= 2));
    // The session keeps going after a snapshot.
    let final_result = session.run();
    assert!(final_result.n_ocs() >= snapshot.n_ocs());
}

#[test]
fn pruned_events_report_rules() {
    let ranked = RankedTable::from_table(&employee_table());
    let session = builder().approximate(0.15).build(&ranked);
    let mut rules = Vec::new();
    let mut n_pruned_events = 0usize;
    let mut session = session;
    for event in session.by_ref() {
        if let DiscoveryEvent::Pruned { rule, level, .. } = event {
            assert!(level >= 2);
            n_pruned_events += 1;
            if !rules.contains(&rule) {
                rules.push(rule);
            }
        }
    }
    let total_pruned: usize = session
        .stats()
        .per_level
        .iter()
        .map(|l| l.n_oc_pruned)
        .sum();
    assert_eq!(n_pruned_events, total_pruned);
    assert!(!rules.is_empty(), "employee data triggers pruning rules");
}
