//! Property tests for the canonical mapping (Section 2.2) and the
//! list-based OD validators: on random tables, a list OD `X |-> Y` holds
//! directly iff all canonical OCs/OFDs of its mapping hold, and the
//! approximate list validator finds true minimal removal sets.

use aod_core::check_list_od;
use aod_table::RankedTable;
use aod_validate::{
    brute_min_removal_pairs, list_od_holds, list_od_min_removal, list_od_removal_set,
    projection_ranks, ViolationKind,
};
use proptest::prelude::*;

fn small_table() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (2usize..12, 2usize..5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::collection::vec(0u32..4, rows), cols)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// X |-> Y holds directly iff its canonical mapping holds (the
    /// polynomial equivalence of Section 2.2 / Example 2.13).
    #[test]
    fn canonical_mapping_is_equivalent(columns in small_table()) {
        let table = RankedTable::from_u32_columns(columns);
        let n_cols = table.n_cols();
        // exhaustively test all 1- and 2-element lists over the columns
        let mut all_lists: Vec<Vec<usize>> = Vec::new();
        for a in 0..n_cols {
            all_lists.push(vec![a]);
            for b in 0..n_cols {
                all_lists.push(vec![a, b]);
            }
        }
        for x in &all_lists {
            for y in &all_lists {
                prop_assert_eq!(
                    list_od_holds(&table, x, y),
                    check_list_od(&table, x, y),
                    "lists {:?} |-> {:?}", x, y
                );
            }
        }
    }

    /// The approximate list-OD validator returns the true minimum number of
    /// tuples to remove (brute-forced over encoded swap/split violations).
    #[test]
    fn list_od_removal_is_minimal(columns in small_table(), xy_seed in 0u64..1000) {
        let table = RankedTable::from_u32_columns(columns);
        let n_cols = table.n_cols();
        // derive two deterministic lists from the seed
        let x = vec![(xy_seed as usize) % n_cols];
        let y = vec![(xy_seed as usize / n_cols) % n_cols, (xy_seed as usize) % n_cols];
        let fast = list_od_min_removal(&table, &x, &y, usize::MAX).expect("no limit");
        let (xr, _) = projection_ranks(&table, &x);
        let (yr, _) = projection_ranks(&table, &y);
        let pairs: Vec<(u32, u32)> =
            xr.iter().copied().zip(yr.iter().copied()).collect();
        let brute = brute_min_removal_pairs(&pairs, ViolationKind::SwapOrSplit);
        prop_assert_eq!(fast, brute);
    }

    /// Removing the reported removal set makes the OD hold.
    #[test]
    fn list_od_removal_set_repairs((columns, seed) in (small_table(), 0u64..100)) {
        let table = RankedTable::from_u32_columns(columns.clone());
        let n_cols = table.n_cols();
        let x = vec![(seed as usize) % n_cols];
        let y = vec![(seed as usize + 1) % n_cols];
        let set = list_od_removal_set(&table, &x, &y);
        let keep: Vec<usize> =
            (0..table.n_rows()).filter(|&r| !set.contains(&(r as u32))).collect();
        let filtered: Vec<Vec<u32>> = columns
            .iter()
            .map(|col| keep.iter().map(|&r| col[r]).collect())
            .collect();
        let repaired = RankedTable::from_u32_columns(filtered);
        prop_assert!(list_od_holds(&repaired, &x, &y));
    }

    /// Symmetry and reflexivity sanity for list OCs.
    #[test]
    fn list_oc_axioms(columns in small_table()) {
        let table = RankedTable::from_u32_columns(columns);
        let n_cols = table.n_cols();
        for a in 0..n_cols {
            // X ~ X always holds (Definition 2.3: XX <-> XX).
            prop_assert!(aod_validate::list_oc_holds(&table, &[a], &[a]));
            for b in 0..n_cols {
                prop_assert_eq!(
                    aod_validate::list_oc_holds(&table, &[a], &[b]),
                    aod_validate::list_oc_holds(&table, &[b], &[a])
                );
            }
        }
    }
}

#[test]
fn repeated_attribute_lists_are_handled() {
    // ODs with the same attribute on both sides (the case [4] misses, per
    // Section 2.2's related-work discussion).
    let table = RankedTable::from_u32_columns(vec![vec![1, 2, 3], vec![3, 1, 2]]);
    assert!(list_od_holds(&table, &[0], &[0]));
    assert!(list_od_holds(&table, &[0, 1], &[0]));
    assert_eq!(
        check_list_od(&table, &[0, 1], &[0]),
        list_od_holds(&table, &[0, 1], &[0])
    );
    assert_eq!(
        check_list_od(&table, &[0], &[0, 1]),
        list_od_holds(&table, &[0], &[0, 1])
    );
}
