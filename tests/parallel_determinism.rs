//! The parallel executor's determinism contract: for every configuration,
//! discovery with `parallelism(4)` must be **bit-identical** to
//! `parallelism(1)` — the event stream, the dependency lists (including
//! their `f64` factors/coverage) and every order-insensitive statistics
//! counter. Only the `Duration` phase timers and `threads_used` may
//! differ.

use aod::prelude::*;
use proptest::prelude::*;

/// A small random table: two payload columns and a low-cardinality
/// context column, so lattice contexts have multiple classes.
fn small_table() -> impl Strategy<Value = RankedTable> {
    (1usize..14)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0u32..6, n),
                proptest::collection::vec(0u32..6, n),
                proptest::collection::vec(0u32..3, n),
            )
        })
        .prop_map(|(a, b, c)| RankedTable::from_u32_columns(vec![a, b, c]))
}

/// The acceptance matrix: ε ∈ {0, 0.1, 0.3} × both AOC strategies.
fn configs() -> Vec<DiscoveryConfig> {
    let mut out = Vec::new();
    for eps in [0.0, 0.1, 0.3] {
        out.push(DiscoveryConfig::approximate(eps));
        out.push(DiscoveryConfig::approximate_iterative(eps));
    }
    out
}

fn run_collect(
    table: &RankedTable,
    config: &DiscoveryConfig,
    threads: usize,
) -> (Vec<DiscoveryEvent>, DiscoveryResult) {
    let mut session = DiscoveryBuilder::from_config(config.clone())
        .parallelism(threads)
        .build(table);
    let events: Vec<DiscoveryEvent> = session.by_ref().collect();
    (events, session.into_result())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Four workers, one worker: same events, same dependencies, same
    /// counters — across the full ε × strategy acceptance matrix.
    #[test]
    fn four_threads_bit_identical_to_one(table in small_table()) {
        for config in configs() {
            let (seq_events, seq) = run_collect(&table, &config, 1);
            let (par_events, par) = run_collect(&table, &config, 4);

            prop_assert_eq!(&par_events, &seq_events, "config {:?}", &config);
            prop_assert_eq!(&par.ocs, &seq.ocs, "config {:?}", &config);
            prop_assert_eq!(&par.ofds, &seq.ofds, "config {:?}", &config);
            // Order-insensitive stats: per-level counters and the flags.
            prop_assert_eq!(&par.stats.per_level, &seq.stats.per_level);
            prop_assert_eq!(par.stats.timed_out, seq.stats.timed_out);
            prop_assert_eq!(par.stats.stopped_early, seq.stats.stopped_early);
            // The thread knob is the *only* visible difference.
            prop_assert_eq!(par.stats.threads_used, 4);
            prop_assert_eq!(seq.stats.threads_used, 1);
        }
    }

    /// The parallel run also matches the one-shot compat `discover()`
    /// (which runs sequentially), transitively pinning all three paths.
    #[test]
    fn parallel_matches_one_shot_discover(table in small_table()) {
        for config in configs() {
            let one_shot = discover(&table, &config);
            let (_, par) = run_collect(&table, &config, 4);
            prop_assert_eq!(&par.ocs, &one_shot.ocs, "config {:?}", &config);
            prop_assert_eq!(&par.ofds, &one_shot.ofds, "config {:?}", &config);
        }
    }
}

/// `top_k` cuts the parallel merge at exactly the candidate where the
/// sequential run stops: the early-exit prefix is identical.
#[test]
fn parallel_top_k_serves_the_same_prefix() {
    let ranked = RankedTable::from_table(&employee_table());
    let full = DiscoveryBuilder::new().approximate(0.15).run(&ranked);
    assert!(full.n_ocs() > 3, "need enough OCs for the scenario");
    for k in [1usize, 3, full.n_ocs()] {
        let seq = DiscoveryBuilder::new()
            .approximate(0.15)
            .top_k(k)
            .parallelism(1)
            .run(&ranked);
        let par = DiscoveryBuilder::new()
            .approximate(0.15)
            .top_k(k)
            .parallelism(4)
            .run(&ranked);
        assert_eq!(par.ocs, seq.ocs, "k = {k}");
        assert_eq!(par.ofds, seq.ofds, "k = {k}");
        assert_eq!(par.stats.per_level, seq.stats.per_level, "k = {k}");
        assert_eq!(par.ocs, full.ocs[..k.min(full.n_ocs())].to_vec());
    }
}

/// A pre-cancelled parallel session stops before validating anything and
/// reports well-formed flagged partials, like the sequential one.
#[test]
fn parallel_pre_cancelled_session_is_empty_and_flagged() {
    let ranked = RankedTable::from_table(&employee_table());
    let token = CancelToken::new();
    token.cancel();
    let result = DiscoveryBuilder::new()
        .approximate(0.2)
        .parallelism(4)
        .cancel_token(token)
        .build(&ranked)
        .run();
    assert_eq!(result.n_ocs() + result.n_ofds(), 0);
    assert!(result.is_partial() && result.stats.stopped_early);
}

/// Cancelling between levels lands the parallel session on the same level
/// boundary as the sequential one (the acceptance scenario of the
/// session API, re-run with 4 workers).
#[test]
fn parallel_cancel_after_level_two_equals_max_level_two() {
    let ranked = RankedTable::from_table(&employee_table());
    let capped = discover(
        &ranked,
        &DiscoveryConfig::approximate(0.15).with_max_level(2),
    );
    let mut session = DiscoveryBuilder::new()
        .approximate(0.15)
        .parallelism(4)
        .build(&ranked);
    let token = session.cancel_token();
    for event in session.by_ref() {
        if let DiscoveryEvent::LevelComplete(outcome) = &event {
            if outcome.level == 2 {
                token.cancel();
            }
        }
    }
    assert_eq!(session.stop_reason(), Some(StopReason::Cancelled));
    let partial = session.into_result();
    assert_eq!(partial.ocs, capped.ocs);
    assert_eq!(partial.ofds, capped.ofds);
    assert!(partial.is_partial());
}

/// `with_threads` on the plain config plumbs through `discover()` et al.
#[test]
fn config_threads_plumb_through_from_config() {
    let ranked = RankedTable::from_table(&employee_table());
    let seq = discover(&ranked, &DiscoveryConfig::approximate(0.15));
    let par = discover(&ranked, &DiscoveryConfig::approximate(0.15).with_threads(4));
    assert_eq!(par.stats.threads_used, 4);
    assert_eq!(par.ocs, seq.ocs);
    assert_eq!(par.ofds, seq.ofds);
}
