//! Cross-crate consistency at realistic scale: the two AOC validators, the
//! exact validators, the discovery driver and the TANE baseline must agree
//! wherever their specifications overlap, on generated flight/ncvoter data.

use aod::datagen::{flight, ncvoter};
use aod::prelude::*;
use aod::tane::{tane, TaneConfig};
use aod_bench::Dataset;
use aod_validate::brute_min_removal_oc;
use proptest::prelude::*;

#[test]
fn validators_agree_on_generated_data() {
    for ds in [Dataset::Flight, Dataset::Ncvoter] {
        let table = ds.ranked_10(3_000, 5);
        let ctx = Partition::unit(table.n_rows());
        let mut v = OcValidator::new();
        for a in 0..table.n_cols() {
            for b in a + 1..table.n_cols() {
                let (ar, br) = (table.column(a).ranks(), table.column(b).ranks());
                let exact = v.exact_oc_holds(&ctx, ar, br);
                let opt = v.min_removal_optimal(&ctx, ar, br, usize::MAX).unwrap();
                let iter = v.min_removal_iterative(&ctx, ar, br, usize::MAX).unwrap();
                assert_eq!(exact, opt == 0, "{} ({a},{b})", ds.name());
                assert!(iter >= opt, "{} ({a},{b})", ds.name());
                // the OD removal count is at least the OC's (more violations)
                let od = v.min_removal_od(&ctx, ar, br, usize::MAX).unwrap();
                assert!(od >= opt, "{} ({a},{b})", ds.name());
            }
        }
    }
}

#[test]
fn discovery_ofds_match_tane_in_exact_mode() {
    // The OFD side of the discovery driver is TANE; in exact mode, on the
    // same table, both must produce the same (lhs, rhs) set.
    for ds in [Dataset::Flight, Dataset::Ncvoter] {
        let table = ds.ranked_10(1_000, 9);
        let discovery = discover(&table, &DiscoveryConfig::exact());
        let baseline = tane(&table, &TaneConfig::exact());
        let mut a: Vec<(u64, usize)> = discovery
            .ofds
            .iter()
            .map(|d| (d.context.bits(), d.rhs))
            .collect();
        let mut b: Vec<(u64, usize)> = baseline
            .fds
            .iter()
            .map(|fd| (fd.lhs.bits(), fd.rhs))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{}", ds.name());
    }
}

#[test]
fn planted_rules_recovered_at_scale() {
    // flight: arrDelay ~ lateAircraftDelay at < 10%; valid at eps = 0.10.
    let t = flight::flight(42).ranked(30_000);
    let out = validate_aoc(
        &t,
        AttrSet::EMPTY,
        flight::ARR_DELAY,
        flight::LATE_AIRCRAFT_DELAY,
        0.10,
        AocStrategy::Optimal,
    );
    assert!(out.is_valid(), "factor {:?}", out.factor());
    assert!(out.factor().unwrap() > 0.0);

    // ncvoter: municipality rule valid at 20%, invalid at 5%.
    let t = ncvoter::ncvoter(42).ranked(30_000);
    let at20 = validate_aoc(
        &t,
        AttrSet::EMPTY,
        ncvoter::MUNICIPALITY_ABBRV,
        ncvoter::MUNICIPALITY_DESC,
        0.20,
        AocStrategy::Optimal,
    );
    let at5 = validate_aoc(
        &t,
        AttrSet::EMPTY,
        ncvoter::MUNICIPALITY_ABBRV,
        ncvoter::MUNICIPALITY_DESC,
        0.05,
        AocStrategy::Optimal,
    );
    assert!(at20.is_valid());
    assert!(!at5.is_valid());
}

#[test]
fn discovery_is_deterministic() {
    let table = Dataset::Flight.ranked_10(2_000, 11);
    let r1 = discover(&table, &DiscoveryConfig::approximate(0.1));
    let r2 = discover(&table, &DiscoveryConfig::approximate(0.1));
    let key = |r: &DiscoveryResult| -> Vec<(u64, usize, usize, usize)> {
        r.ocs
            .iter()
            .map(|d| (d.context.bits(), d.a, d.b, d.removed))
            .collect()
    };
    assert_eq!(key(&r1), key(&r2));
    assert_eq!(r1.n_ofds(), r2.n_ofds());
}

#[test]
fn interestingness_ranks_planted_rules_highly() {
    // The planted empty-context AOCs must rank above deep-context ones.
    let table = Dataset::Ncvoter.ranked_10(10_000, 42);
    let result = discover(&table, &DiscoveryConfig::approximate(0.20));
    let ranked = result.ranked_ocs();
    assert!(!ranked.is_empty());
    // Ranked list is sorted by interestingness.
    for w in ranked.windows(2) {
        assert!(w[0].interestingness() >= w[1].interestingness());
    }
    // Top entry must be a low-level (small context) dependency.
    assert!(ranked[0].level <= 3);
}

/// Random small instances as three raw columns: the candidate pair plus a
/// low-cardinality context column (so contexts have multiple classes).
fn small_instance() -> impl Strategy<Value = (Vec<u32>, Vec<u32>, Vec<u32>)> {
    (1usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..5, n),
            proptest::collection::vec(0u32..5, n),
            proptest::collection::vec(0u32..3, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The paper's minimality claim (§3.2, Theorem 3.3) exercised through
    /// the facade: `validate_aoc` with the LNDS validator (Algorithm 2)
    /// reports exactly the brute-force minimal removal count, with the
    /// context partition built from an [`AttrSet`] as in discovery.
    #[test]
    fn facade_optimal_aoc_matches_brute_force((a, b, ctx_vals) in small_instance()) {
        let table = RankedTable::from_u32_columns(vec![a, b, ctx_vals]);
        let out = validate_aoc(
            &table,
            AttrSet::from_attrs([2]),
            0,
            1,
            1.0,
            AocStrategy::Optimal,
        );
        let ctx = Partition::for_attrs(&table, [2]);
        let brute =
            brute_min_removal_oc(&ctx, table.column(0).ranks(), table.column(1).ranks());
        prop_assert_eq!(out.removed, Some(brute));
    }

    /// Cross-validator agreement at every ε: Algorithm 1 (iterative
    /// baseline) may over-count removals, so wherever verdicts can
    /// legitimately differ the disagreement is one-sided — anything the
    /// iterative validator accepts, the optimal validator accepts too
    /// (Exp-4's misses are always iterative rejections of valid
    /// candidates, never the reverse). At the ε = 0 and ε = 1 extremes
    /// the verdicts coincide exactly.
    #[test]
    fn iterative_and_optimal_verdicts_agree_at_every_epsilon(
        (a, b, ctx_vals) in small_instance()
    ) {
        let table = RankedTable::from_u32_columns(vec![a, b, ctx_vals]);
        let context = AttrSet::from_attrs([2]);
        for pct in 0..=20u32 {
            let eps = f64::from(pct) / 20.0;
            let opt = validate_aoc(&table, context, 0, 1, eps, AocStrategy::Optimal);
            let it = validate_aoc(&table, context, 0, 1, eps, AocStrategy::Iterative);
            prop_assert_eq!(opt.budget, it.budget);
            if it.is_valid() {
                prop_assert!(
                    opt.is_valid(),
                    "eps {eps}: iterative accepted but optimal rejected"
                );
            }
            if let (Some(o), Some(i)) = (opt.removed, it.removed) {
                prop_assert!(i >= o, "eps {eps}: iterative under-counted {i} < {o}");
            }
            if pct == 0 {
                // ε = 0 degenerates to exact validation on both sides.
                prop_assert_eq!(opt.is_valid(), it.is_valid());
            }
            if pct == 20 {
                // ε = 1 admits any removal set: both must accept.
                prop_assert!(opt.is_valid() && it.is_valid());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pins the (still unwired) bidirectional validator to the brute-force
    /// oracle across all four direction combinations: reversing the rank
    /// order of a side and validating with the ordinary machinery must
    /// report exactly the brute-force minimal removal count of the
    /// direction-transformed instance. This is the safety net for wiring
    /// bidirectional discovery into the engine in a later PR.
    #[test]
    fn bidirectional_min_removal_matches_brute_oracle(
        (a, b, ctx_vals) in small_instance()
    ) {
        use aod::validate::{min_removal_bidirectional, Direction};
        let n_distinct = 5u32;
        let ctx = Partition::from_ranks(&ctx_vals, 3);
        let mut v = OcValidator::new();
        for dir_a in [Direction::Asc, Direction::Desc] {
            for dir_b in [Direction::Asc, Direction::Desc] {
                let fast = min_removal_bidirectional(
                    &mut v, &ctx, &a, n_distinct, dir_a, &b, n_distinct, dir_b, usize::MAX,
                )
                .expect("no limit");
                // Independent oracle: transform the ranks per direction,
                // then brute-force the ordinary OC.
                let a2 = dir_a.apply(&a, n_distinct);
                let b2 = dir_b.apply(&b, n_distinct);
                let brute = brute_min_removal_oc(&ctx, &a2, &b2);
                prop_assert_eq!(
                    fast, brute,
                    "dirs {:?}/{:?} on a={:?} b={:?} ctx={:?}",
                    dir_a, dir_b, &a, &b, &ctx_vals
                );
            }
        }
    }

    /// `best_direction` really is the argmin over the two orientations of
    /// `B` (with `A` fixed ascending, which loses no generality), and its
    /// reported count matches the brute oracle of the chosen orientation.
    #[test]
    fn best_direction_is_the_argmin_of_the_brute_oracles(
        (a, b, ctx_vals) in small_instance()
    ) {
        use aod::validate::{best_direction, Direction};
        let n_distinct = 5u32;
        let ctx = Partition::from_ranks(&ctx_vals, 3);
        let mut v = OcValidator::new();
        let (dir, count) = best_direction(&mut v, &ctx, &a, &b, n_distinct);
        let asc = brute_min_removal_oc(&ctx, &a, &b);
        let desc = brute_min_removal_oc(&ctx, &a, &Direction::Desc.apply(&b, n_distinct));
        prop_assert_eq!(count, asc.min(desc));
        match dir {
            Direction::Asc => prop_assert_eq!(count, asc),
            Direction::Desc => prop_assert_eq!(count, desc),
        }
    }

    /// Exactness coupling: `bidirectional_oc_holds` ⟺ the transformed
    /// instance's minimal removal set is empty, and the `limit` early-exit
    /// never changes a verdict (it only changes whether the count is
    /// reported).
    #[test]
    fn bidirectional_exactness_and_limits_are_consistent(
        (a, b, ctx_vals) in small_instance()
    ) {
        use aod::validate::{bidirectional_oc_holds, min_removal_bidirectional, Direction};
        let n_distinct = 5u32;
        let ctx = Partition::from_ranks(&ctx_vals, 3);
        let mut v = OcValidator::new();
        for dir_b in [Direction::Asc, Direction::Desc] {
            let holds = bidirectional_oc_holds(
                &mut v, &ctx, &a, n_distinct, Direction::Asc, &b, n_distinct, dir_b,
            );
            let full = min_removal_bidirectional(
                &mut v, &ctx, &a, n_distinct, Direction::Asc, &b, n_distinct, dir_b, usize::MAX,
            )
            .expect("no limit");
            prop_assert_eq!(holds, full == 0);
            // Early exit: a limit below the true count yields None, at or
            // above it yields the count.
            if full > 0 {
                let below = min_removal_bidirectional(
                    &mut v, &ctx, &a, n_distinct, Direction::Asc, &b, n_distinct, dir_b,
                    full - 1,
                );
                prop_assert_eq!(below, None);
            }
            let at = min_removal_bidirectional(
                &mut v, &ctx, &a, n_distinct, Direction::Asc, &b, n_distinct, dir_b, full,
            );
            prop_assert_eq!(at, Some(full));
        }
    }
}

#[test]
fn timeout_budget_respected_on_iterative_runs() {
    use std::time::{Duration, Instant};
    let table = Dataset::Ncvoter.ranked_10(50_000, 4);
    let t0 = Instant::now();
    let result = discover(
        &table,
        &DiscoveryConfig::approximate_iterative(0.1).with_timeout(Duration::from_millis(500)),
    );
    let elapsed = t0.elapsed();
    assert!(result.stats.timed_out);
    // One candidate validation can overshoot, but not absurdly (the check
    // runs between nodes, and a single 50K-row iterative validation is
    // bounded by the per-class removal loop).
    assert!(elapsed < Duration::from_secs(120), "elapsed {elapsed:?}");
}
