//! End-to-end tests for the `aod-serve` HTTP service, driven over real
//! loopback sockets by the raw-`TcpStream` client in `aod_serve::client`.
//!
//! The acceptance bar: a job submitted over HTTP yields results
//! byte-identical (after a JSON round trip, timing fields excluded — they
//! are the one documented nondeterminism) to `DiscoveryBuilder` run
//! in-process with the same config; the NDJSON event stream matches an
//! in-process session replay bit for bit; `DELETE` cancels cooperatively
//! mid-run; malformed input maps to 400/404; concurrent identical clients
//! agree; repeats are answered from the result cache without
//! re-validating.

use aod::prelude::*;
use aod::serve::client::{request, EventStream};
use aod::serve::json::JsonValue;
use aod::serve::{ServeConfig, Server, ServerHandle};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start_server() -> ServerHandle {
    let server = Server::bind(&ServeConfig {
        bind: "127.0.0.1".to_string(),
        port: 0,
        threads: 3,
        max_jobs: 4,
    })
    .expect("bind ephemeral port");
    server.spawn().expect("spawn workers")
}

fn register_employee(addr: SocketAddr, name: &str) {
    let body = format!(r#"{{"name":"{name}","generate":{{"dataset":"employee"}}}}"#);
    let r = request(addr, "POST", "/datasets", Some(&body)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
}

fn submit_job(addr: SocketAddr, body: &str) -> u64 {
    let r = request(addr, "POST", "/jobs", Some(body)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    r.json().unwrap().get("id").unwrap().as_u64().unwrap()
}

/// Polls `GET /jobs/{id}` until the job leaves `running`.
fn wait_done(addr: SocketAddr, id: u64) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        let v = r.json().unwrap();
        let status = v.get("status").unwrap().as_str().unwrap().to_string();
        if status != "running" {
            assert_eq!(status, "done", "{}", r.body);
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Recursively zeroes every `*_ms` field — the documented timing-only
/// nondeterminism — so the rest of two documents can be compared bytewise.
fn zero_timings(value: &mut JsonValue) {
    match value {
        JsonValue::Object(fields) => {
            for (key, field) in fields.iter_mut() {
                if key.ends_with("_ms") {
                    *field = JsonValue::Number(0.0);
                } else {
                    zero_timings(field);
                }
            }
        }
        JsonValue::Array(items) => items.iter_mut().for_each(zero_timings),
        _ => {}
    }
}

fn canonical_sans_timings(json_text: &str) -> String {
    let mut v = JsonValue::parse(json_text).expect("valid JSON");
    zero_timings(&mut v);
    v.to_json()
}

#[test]
fn submit_poll_fetch_matches_in_process_run() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let id = submit_job(
        addr,
        r#"{"dataset":"emp","config":{"epsilon":0.15,"strategy":"optimal"}}"#,
    );
    let status = wait_done(addr, id);
    assert_eq!(status.get("cached").unwrap().as_bool(), Some(false));
    assert!(status.get("stats").unwrap().get("total_ms").is_some());

    let result = request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
    assert_eq!(result.status, 200);

    // The same config in-process, through the same wire encoding.
    let ranked = RankedTable::from_table(&employee_table());
    let local = DiscoveryBuilder::new().approximate(0.15).run(&ranked);
    assert_eq!(
        canonical_sans_timings(&result.body),
        canonical_sans_timings(&local.to_json()),
        "HTTP result must be byte-identical to the in-process run \
         (timing fields aside) after a JSON round trip"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn event_stream_matches_in_process_replay_bit_for_bit() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let id = submit_job(addr, r#"{"dataset":"emp","config":{"epsilon":0.1}}"#);
    let mut stream = EventStream::open(addr, &format!("/jobs/{id}/events")).unwrap();
    let streamed = stream.collect_lines().unwrap();

    let ranked = RankedTable::from_table(&employee_table());
    let mut session = DiscoveryBuilder::new().approximate(0.1).build(&ranked);
    let replay: Vec<String> = session.by_ref().map(|e| e.to_json()).collect();

    assert_eq!(streamed, replay, "NDJSON stream != in-process replay");

    // A second stream of the same finished job replays identically.
    let mut again = EventStream::open(addr, &format!("/jobs/{id}/events")).unwrap();
    assert_eq!(again.collect_lines().unwrap(), replay);
    handle.shutdown();
    handle.join();
}

#[test]
fn delete_cancels_mid_run_with_partial_results() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    // Pace the job so "mid-run" is a wide, deterministic window.
    let id = submit_job(
        addr,
        r#"{"dataset":"emp","config":{"epsilon":0.1,"level_delay_ms":2000}}"#,
    );
    // Follow the live stream until the first completed level...
    let mut stream = EventStream::open(addr, &format!("/jobs/{id}/events")).unwrap();
    let mut cancelled_at_level = 0u64;
    while let Some(line) = stream.next_line().unwrap() {
        let event = JsonValue::parse(&line).unwrap();
        if event.get("event").unwrap().as_str() == Some("level_complete") {
            cancelled_at_level = event.get("level").unwrap().as_u64().unwrap();
            // ...then cancel over a second connection while it pauses.
            let r = request(addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
            assert_eq!(r.status, 202, "{}", r.body);
            assert_eq!(
                r.json().unwrap().get("cancelled").unwrap().as_bool(),
                Some(true)
            );
            break;
        }
    }
    assert!(cancelled_at_level >= 1, "never saw a level_complete event");
    // The stream ends (instead of running the full lattice) and the final
    // events include the cancellation marker.
    let tail = stream.collect_lines().unwrap();
    assert!(
        tail.iter().any(
            |l| JsonValue::parse(l).unwrap().get("event").unwrap().as_str() == Some("cancelled")
        ),
        "no cancelled event in {tail:?}"
    );

    let status = wait_done(addr, id);
    assert_eq!(
        status.get("cancel_requested").unwrap().as_bool(),
        Some(true)
    );
    // Cancellation took effect within one lattice level of the request.
    let levels_completed = status.get("levels_completed").unwrap().as_u64().unwrap();
    assert!(
        levels_completed <= cancelled_at_level + 1,
        "cancel was not cooperative within one level: requested at level \
         {cancelled_at_level}, ran through {levels_completed}"
    );
    let result = request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
    assert_eq!(result.status, 200);
    let result = result.json().unwrap();
    assert_eq!(
        result
            .get("stats")
            .unwrap()
            .get("stopped_early")
            .unwrap()
            .as_bool(),
        Some(true),
        "partial results must be flagged stopped_early"
    );
    // Partial: strictly fewer levels than the full 7-column lattice run.
    let full_levels = {
        let ranked = RankedTable::from_table(&employee_table());
        DiscoveryBuilder::new()
            .approximate(0.1)
            .run(&ranked)
            .stats
            .per_level
            .len()
    };
    let partial_levels = result
        .get("stats")
        .unwrap()
        .get("per_level")
        .unwrap()
        .as_array()
        .unwrap()
        .len();
    assert!(
        partial_levels < full_levels,
        "cancelled run processed {partial_levels} of {full_levels} levels — not partial"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_bodies_are_400s() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    for (body, needle) in [
        ("{not json", "invalid JSON body"),
        ("[1,2,3]", "must be a JSON object"),
        ("", "must be a JSON object"),
        (r#"{"config":{}}"#, "missing string field `dataset`"),
        (
            r#"{"dataset":"emp","config":{"epsilon":7}}"#,
            "within [0, 1]",
        ),
        (
            // The validation-boundary regression: an out-of-range
            // threshold is a clean 400, never a panicking job thread.
            r#"{"dataset":"emp","config":{"epsilon":1.5}}"#,
            "within [0, 1]",
        ),
        (
            r#"{"dataset":"emp","config":{"epsilon":0.1,"strategy":"hybrid","sample_stride":0}}"#,
            "at least 1",
        ),
        (
            r#"{"dataset":"emp","config":{"epsilon":0.1,"sample_stride":8}}"#,
            "only applies",
        ),
        (
            r#"{"dataset":"emp","config":{"frobnicate":true}}"#,
            "unknown config field",
        ),
        (
            r#"{"dataset":"emp","config":{"columns":["nope"]}}"#,
            "unknown column",
        ),
    ] {
        let r = request(addr, "POST", "/jobs", Some(body)).unwrap();
        assert_eq!(r.status, 400, "{body:?} -> {}", r.body);
        assert!(r.body.contains(needle), "{body:?} -> {}", r.body);
    }
    // Dataset registration validates the same way.
    let r = request(addr, "POST", "/datasets", Some(r#"{"name":"x"}"#)).unwrap();
    assert_eq!(r.status, 400);
    let r = request(
        addr,
        "POST",
        "/datasets",
        Some(r#"{"name":"x","generate":{"dataset":"nope"}}"#),
    )
    .unwrap();
    assert_eq!(r.status, 400);
    handle.shutdown();
    handle.join();
}

#[test]
fn unknown_jobs_and_datasets_are_404s() {
    let handle = start_server();
    let addr = handle.addr();
    for (method, path) in [
        ("GET", "/jobs/999"),
        ("GET", "/jobs/999/result"),
        ("GET", "/jobs/999/events"),
        ("DELETE", "/jobs/999"),
        ("GET", "/jobs/abc"),
        ("GET", "/datasets/ghost"),
    ] {
        let r = request(addr, method, path, None).unwrap();
        assert_eq!(r.status, 404, "{method} {path} -> {}", r.body);
    }
    // Submitting against an unregistered dataset is a 404, not a 400.
    let r = request(addr, "POST", "/jobs", Some(r#"{"dataset":"ghost"}"#)).unwrap();
    assert_eq!(r.status, 404);
    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_clients_on_one_dataset_agree() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let body = r#"{"dataset":"emp","config":{"epsilon":0.2,"strategy":"iterative"}}"#;
    let results: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let id = submit_job(addr, body);
                    wait_done(addr, id);
                    let r = request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
                    assert_eq!(r.status, 200);
                    canonical_sans_timings(&r.body)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert_eq!(
        results[0], results[1],
        "two concurrent clients saw different results"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn identical_requests_hit_the_result_cache() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let body = r#"{"dataset":"emp","config":{"epsilon":0.15,"max_level":3}}"#;
    let first = submit_job(addr, body);
    wait_done(addr, first);
    let first_result = request(addr, "GET", &format!("/jobs/{first}/result"), None).unwrap();

    // Equivalent spelling (different key order, explicit defaults) of the
    // same canonical config: must be a cache hit, not a re-run.
    let respelled = r#"{"dataset":"emp","config":{"max_level":3,"threads":1,"strategy":"optimal","mode":"approximate","epsilon":0.15}}"#;
    let r = request(addr, "POST", "/jobs", Some(respelled)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    let v = r.json().unwrap();
    assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
    let second = v.get("id").unwrap().as_u64().unwrap();

    // Served without re-validating: the executed counter did not move.
    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("jobs_executed").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("jobs_submitted").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));

    // And the replay is byte-identical, events included (no timing fields
    // exist in either payload's deterministic part — compare raw bytes of
    // the events, canonical form of the results).
    let second_result = request(addr, "GET", &format!("/jobs/{second}/result"), None).unwrap();
    assert_eq!(
        canonical_sans_timings(&first_result.body),
        canonical_sans_timings(&second_result.body)
    );
    let mut a = EventStream::open(addr, &format!("/jobs/{first}/events")).unwrap();
    let mut b = EventStream::open(addr, &format!("/jobs/{second}/events")).unwrap();
    assert_eq!(a.collect_lines().unwrap(), b.collect_lines().unwrap());

    // A *different* config on the same dataset is not a hit.
    let third = submit_job(addr, r#"{"dataset":"emp","config":{"epsilon":0.15}}"#);
    wait_done(addr, third);
    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("jobs_executed").unwrap().as_u64(), Some(2));
    handle.shutdown();
    handle.join();
}

#[test]
fn hybrid_jobs_match_optimal_but_never_share_cache_entries() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let optimal = submit_job(
        addr,
        r#"{"dataset":"emp","config":{"epsilon":0.15,"strategy":"optimal"}}"#,
    );
    wait_done(addr, optimal);
    let hybrid = submit_job(
        addr,
        r#"{"dataset":"emp","config":{"epsilon":0.15,"strategy":"hybrid","sample_stride":4}}"#,
    );
    wait_done(addr, hybrid);

    // The strategy (and stride) is part of the cache key: despite
    // identical dependency output, the hybrid job executed a fresh run.
    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("jobs_executed").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(0));

    // And the dependency payloads agree bit for bit (the hybrid pre-check
    // is reject-only and sound) — only stats (timings, sampling
    // counters) may differ between the two results.
    let deps = |id: u64| {
        let r = request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
        assert_eq!(r.status, 200);
        let v = r.json().unwrap();
        (
            v.get("ocs").unwrap().to_json(),
            v.get("ofds").unwrap().to_json(),
        )
    };
    assert_eq!(deps(optimal), deps(hybrid));

    // Resubmitting the same hybrid spelling *is* a cache hit.
    let again = submit_job(
        addr,
        r#"{"dataset":"emp","config":{"strategy":"hybrid","sample_stride":4,"epsilon":0.15}}"#,
    );
    wait_done(addr, again);
    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("jobs_executed").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
    handle.shutdown();
    handle.join();
}

#[test]
fn csv_registration_serves_scoped_jobs() {
    let dir = std::env::temp_dir().join(format!("aod_serve_api_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mini.csv");
    std::fs::write(&path, "x,y,z\n1,10,a\n2,20,a\n3,30,b\n4,40,b\n5,50,c\n").unwrap();

    let handle = start_server();
    let addr = handle.addr();
    let body = format!(
        r#"{{"name":"mini","csv":"{}"}}"#,
        path.display().to_string().replace('\\', "\\\\")
    );
    let r = request(addr, "POST", "/datasets", Some(&body)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    let listed = request(addr, "GET", "/datasets", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(listed.get("datasets").unwrap().as_array().unwrap().len(), 1);

    // Scope by column *names*, resolved against the CSV header.
    let id = submit_job(
        addr,
        r#"{"dataset":"mini","config":{"epsilon":0.0,"columns":["x","y"]}}"#,
    );
    wait_done(addr, id);
    let result = request(addr, "GET", &format!("/jobs/{id}/result"), None)
        .unwrap()
        .json()
        .unwrap();
    // x and y are monotonically correlated: the empty-context OC holds.
    let ocs = result.get("ocs").unwrap().as_array().unwrap();
    assert!(!ocs.is_empty());
    for oc in ocs {
        for key in ["a", "b"] {
            assert!(oc.get(key).unwrap().as_u64().unwrap() <= 1, "scope leaked");
        }
    }
    // Duplicate registration conflicts.
    let r = request(addr, "POST", "/datasets", Some(&body)).unwrap();
    assert_eq!(r.status, 409);
    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
