//! The span-tracing subsystem's determinism contract.
//!
//! Three properties, mirroring the executor's bit-identical guarantee:
//!
//! 1. **Byte-stable exports** — under a [`ManualClock`], the Chrome
//!    trace-event and NDJSON exports of a traced run are *byte-identical*
//!    across thread counts and AOC strategies; timing enters only through
//!    the injected clock, never through wall time.
//! 2. **Passive tracing** — attaching a trace sink changes nothing about
//!    the discovery itself: the event stream, the dependency lists and the
//!    order-insensitive counters match an untraced run bit for bit.
//! 3. **Well-nested spans** — job → level → phase → candidate-batch spans
//!    form a proper tree (every child's interval inside its parent's) for
//!    random tables and random cancel points.

use aod::core::{chrome_trace, trace_ndjson};
use aod::obs::{ManualClock, MonotonicClock, Span, TraceSink};
use aod::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Runs traced discovery on `ranked` and returns the deterministic-lane
/// spans plus the result.
fn traced_run(
    ranked: &RankedTable,
    strategy: AocStrategy,
    threads: usize,
    clock: Arc<dyn aod::obs::Clock>,
) -> (Vec<Span>, DiscoveryResult) {
    let sink = Arc::new(TraceSink::new(clock));
    let result = DiscoveryBuilder::new()
        .approximate(0.15)
        .strategy(strategy)
        .parallelism(threads)
        .trace_sink(Arc::clone(&sink))
        .run(ranked);
    (sink.spans(), result)
}

/// Byte-stable exports: the employee-dataset golden trace is identical
/// across threads {1, 4} and across the optimal/hybrid strategies (the
/// hybrid pre-check changes validation internals, never the candidate
/// loops the batches count).
#[test]
fn manual_clock_trace_is_byte_identical_across_threads_and_strategies() {
    let ranked = RankedTable::from_table(&employee_table());
    let mut exports = Vec::new();
    for strategy in [AocStrategy::Optimal, AocStrategy::hybrid()] {
        for threads in [1usize, 4] {
            let (spans, result) =
                traced_run(&ranked, strategy, threads, Arc::new(ManualClock::new()));
            assert!(!spans.is_empty(), "trace recorded no spans");
            assert!(result.n_ocs() > 0, "discovery found nothing");
            exports.push((
                strategy,
                threads,
                chrome_trace(&spans),
                trace_ndjson(&spans),
            ));
        }
    }
    let (_, _, golden_chrome, golden_ndjson) = &exports[0];
    for (strategy, threads, chrome, ndjson) in &exports {
        assert_eq!(
            chrome, golden_chrome,
            "chrome export diverged at strategy {strategy:?}, {threads} threads"
        );
        assert_eq!(
            ndjson, golden_ndjson,
            "ndjson export diverged at strategy {strategy:?}, {threads} threads"
        );
    }
}

/// The Chrome export self-parses with the workspace JSON parser and has
/// the `trace_event` shape Perfetto expects: a `traceEvents` array of
/// complete (`"ph":"X"`) events with name/cat/ts/dur/pid/tid.
#[test]
fn chrome_export_self_parses_with_the_expected_shape() {
    let ranked = RankedTable::from_table(&employee_table());
    let (spans, _) = traced_run(
        &ranked,
        AocStrategy::Optimal,
        1,
        Arc::new(ManualClock::new()),
    );
    let parsed = aod::core::json::JsonValue::parse(&chrome_trace(&spans)).expect("export parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for event in events {
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(event.get("pid").and_then(|v| v.as_u64()), Some(1));
        for key in ["name", "cat", "ts", "dur", "tid", "args"] {
            assert!(event.get(key).is_some(), "event missing `{key}`");
        }
    }
    // The hierarchy's roll-up span is present exactly once.
    let jobs = spans.iter().filter(|s| s.cat == "job").count();
    assert_eq!(jobs, 1, "expected exactly one job span");
}

/// Attaching a trace sink is observationally free: events, dependencies
/// and order-insensitive stats are bit-identical with tracing on or off,
/// sequentially and in parallel.
#[test]
fn tracing_leaves_discovery_output_bit_identical() {
    let ranked = RankedTable::from_table(&employee_table());
    for threads in [1usize, 4] {
        let build = || {
            DiscoveryBuilder::new()
                .approximate(0.15)
                .parallelism(threads)
        };
        let mut plain_session = build().build(&ranked);
        let plain_events: Vec<DiscoveryEvent> = plain_session.by_ref().collect();
        let plain = plain_session.into_result();

        let sink = Arc::new(TraceSink::new(Arc::new(ManualClock::new())));
        let mut traced_session = build().trace_sink(Arc::clone(&sink)).build(&ranked);
        let traced_events: Vec<DiscoveryEvent> = traced_session.by_ref().collect();
        let traced = traced_session.into_result();

        assert_eq!(traced_events, plain_events, "{threads} threads");
        assert_eq!(traced.ocs, plain.ocs, "{threads} threads");
        assert_eq!(traced.ofds, plain.ofds, "{threads} threads");
        assert_eq!(traced.stats.per_level, plain.stats.per_level);
        assert!(!sink.spans().is_empty(), "the sink did record spans");
    }
}

/// Asserts the span tree invariants: unique ids, every non-root span's
/// parent present with the right category, every child's interval inside
/// its parent's.
fn assert_well_nested(spans: &[Span]) {
    let mut by_id: HashMap<u64, &Span> = HashMap::new();
    for span in spans {
        assert!(
            by_id.insert(span.id, span).is_none(),
            "duplicate span id {} ({})",
            span.id,
            span.name
        );
    }
    for span in spans {
        if span.parent == 0 {
            assert_eq!(span.cat, "job", "only the job span may be a root");
            continue;
        }
        let parent = by_id
            .get(&span.parent)
            .unwrap_or_else(|| panic!("span `{}` has an orphan parent id", span.name));
        let expected_parent_cat = match span.cat {
            "level" => "job",
            "phase" => "level",
            "batch" => "phase",
            other => panic!("unexpected span category `{other}`"),
        };
        assert_eq!(parent.cat, expected_parent_cat, "span `{}`", span.name);
        assert!(
            span.start_us >= parent.start_us
                && span.start_us + span.dur_us <= parent.start_us + parent.dur_us,
            "span `{}` [{}, {}] escapes parent `{}` [{}, {}]",
            span.name,
            span.start_us,
            span.start_us + span.dur_us,
            parent.name,
            parent.start_us,
            parent.start_us + parent.dur_us,
        );
    }
    if !spans.is_empty() {
        assert_eq!(
            spans.iter().filter(|s| s.cat == "job").count(),
            1,
            "expected exactly one job span"
        );
    }
}

/// A small random table shaped like the parallel-determinism suite's:
/// two payload columns and a low-cardinality context column.
fn small_table() -> impl Strategy<Value = RankedTable> {
    (2usize..12)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0u32..5, n),
                proptest::collection::vec(0u32..5, n),
                proptest::collection::vec(0u32..3, n),
            )
        })
        .prop_map(|(a, b, c)| RankedTable::from_u32_columns(vec![a, b, c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Spans stay well-nested for random tables, thread counts, level
    /// caps, top-k cuts and mid-run cancellation — every way a session
    /// can stop early.
    #[test]
    fn spans_nest_properly_under_random_cancel_points(
        table in small_table(),
        threads in 1usize..5,
        max_level in 1usize..4,
        top_k in 0usize..6,
        cancel_level in 0usize..4,
    ) {
        let sink = Arc::new(TraceSink::new(Arc::new(MonotonicClock::new())));
        let mut builder = DiscoveryBuilder::new()
            .approximate(0.2)
            .parallelism(threads)
            .max_level(max_level)
            .trace_sink(Arc::clone(&sink));
        if top_k > 0 {
            builder = builder.top_k(top_k);
        }
        let mut session = builder.build(&table);
        let token = session.cancel_token();
        for event in session.by_ref() {
            if let DiscoveryEvent::LevelComplete(outcome) = &event {
                if cancel_level > 0 && outcome.level == cancel_level {
                    token.cancel();
                }
            }
        }
        let _ = session.into_result();
        assert_well_nested(&sink.spans());
    }
}
