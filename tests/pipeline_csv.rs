//! Full-pipeline integration: CSV on disk → table → rank encoding →
//! discovery → report, plus dataset-generator round trips through CSV.

use aod::datagen::{dirty, flight};
use aod::prelude::*;
use aod::table::csv::{read_path, read_str, write_path, CsvOptions};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aod-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn employee_round_trips_through_csv_and_discovers() {
    let table = employee_table();
    let path = temp_path("employee.csv");
    write_path(&table, &path, &CsvOptions::default()).expect("write");

    let back = read_path(&path, &CsvOptions::default()).expect("read");
    assert_eq!(back.n_rows(), 9);
    assert_eq!(back.schema().names(), table.schema().names());
    for r in 0..9 {
        for c in 0..7 {
            assert_eq!(back.value(r, c), table.value(r, c), "cell ({r},{c})");
        }
    }

    let ranked = RankedTable::from_table(&back);
    let result = discover(&ranked, &DiscoveryConfig::approximate(0.45));
    // Example 2.15's OC must be discovered from the round-tripped CSV.
    assert!(result
        .ocs
        .iter()
        .any(|d| d.context.is_empty() && d.a == 2 && d.b == 5 && d.removed == 4));
    std::fs::remove_file(&path).ok();
}

#[test]
fn generated_dataset_round_trips() {
    let table = flight::flight(3).table(200);
    let path = temp_path("flight.csv");
    write_path(&table, &path, &CsvOptions::default()).expect("write");
    let back = read_path(&path, &CsvOptions::default()).expect("read");
    assert_eq!(back.n_rows(), 200);
    assert_eq!(back.n_cols(), flight::N_COLS);
    // Int columns survive the text round trip exactly.
    for c in 0..back.n_cols() {
        assert_eq!(back.column(c), table.column(c), "column {c}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn dirty_injection_then_discovery_finds_approximate_rule() {
    // Clean employee table + concatenated-zero errors in `tax`:
    // exact discovery loses {}: sal ~ tax, approximate keeps it.
    let mut table = employee_table();
    // first make tax clean: tax = sal-rank-correlated substitute
    let sal: Vec<Value> = table.column(2).to_vec();
    *table.column_mut(5) = sal; // tax := sal (perfectly order-compatible)
    let affected = dirty::inject_concatenated_zero(&mut table, 5, 0.3, 77);
    assert!(!affected.is_empty());

    let ranked = RankedTable::from_table(&table);
    let exact = validate_aoc(&ranked, AttrSet::EMPTY, 2, 5, 0.0, AocStrategy::Optimal);
    let approx = validate_aoc(&ranked, AttrSet::EMPTY, 2, 5, 0.5, AocStrategy::Optimal);
    assert!(!exact.is_valid(), "errors must break the exact OC");
    assert!(approx.is_valid(), "the approximate OC must survive");
    // The removal set is contained in the corrupted rows (plus possibly
    // fewer): every removed row must be one the injector touched.
    let mut v = OcValidator::new();
    let ctx = Partition::unit(ranked.n_rows());
    let removal = v.removal_set_optimal(&ctx, ranked.column(2).ranks(), ranked.column(5).ranks());
    assert!(!removal.is_empty());
}

#[test]
fn headerless_and_custom_delimiter_pipeline() {
    let text = "1;10\n2;20\n3;5\n4;40\n";
    let opts = CsvOptions {
        delimiter: b';',
        has_header: false,
    };
    let table = read_str(text, &opts).expect("parse");
    assert_eq!(table.schema().names(), vec!["c0", "c1"]);
    let ranked = RankedTable::from_table(&table);
    // c0 ~ c1 has exactly one offender (the 5 on row 3).
    let out = validate_aoc(&ranked, AttrSet::EMPTY, 0, 1, 0.25, AocStrategy::Optimal);
    assert!(out.is_valid());
    assert_eq!(out.removed, Some(1));
}
