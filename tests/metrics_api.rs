//! End-to-end tests for `GET /metrics` (Prometheus text exposition) and
//! the extended `GET /stats` counters, over real loopback sockets.
//!
//! The acceptance bar: the scrape is structurally valid exposition text
//! (HELP/TYPE before samples, parseable values, no duplicate series),
//! carries the per-dataset job-latency histogram and the discovery
//! instruments populated by the job's event sink, and every cumulative
//! series is monotone across scrapes — including when a scrape races a
//! stale snapshot.

use aod::obs::{Registry, Scrape, BUCKET_BOUNDS_US};
use aod::serve::client::request;
use aod::serve::{ServeConfig, ServeMetrics, ServeSnapshot, Server, ServerHandle, MAX_DATASETS};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start_server() -> ServerHandle {
    let server = Server::bind(&ServeConfig {
        bind: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        max_jobs: 4,
    })
    .expect("bind ephemeral port");
    server.spawn().expect("spawn workers")
}

fn register_employee(addr: SocketAddr, name: &str) {
    let body = format!(r#"{{"name":"{name}","generate":{{"dataset":"employee"}}}}"#);
    let r = request(addr, "POST", "/datasets", Some(&body)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
}

fn run_job(addr: SocketAddr, body: &str) -> u64 {
    let r = request(addr, "POST", "/jobs", Some(body)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    let id = r.json().unwrap().get("id").unwrap().as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        let status = r
            .json()
            .unwrap()
            .get("status")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        if status != "running" {
            assert_eq!(status, "done", "{}", r.body);
            return id;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Parses a scrape into `series -> value` while asserting exposition
/// structure: every sample belongs to a family announced by `# HELP` and
/// `# TYPE` lines, values parse as floats, and no series repeats.
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut samples = BTreeMap::new();
    let mut announced: Vec<(String, String)> = Vec::new();
    let mut pending_help: Option<String> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap().to_string();
            assert!(pending_help.is_none(), "HELP without TYPE before {line}");
            pending_help = Some(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap().to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown TYPE kind in {line}"
            );
            assert_eq!(
                pending_help.take().as_deref(),
                Some(name.as_str()),
                "TYPE not immediately after its HELP: {line}"
            );
            announced.push((name, kind));
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().expect("sample value parses");
        let name = series.split('{').next().unwrap();
        let family = announced.iter().find(|(n, kind)| match kind.as_str() {
            "histogram" => {
                name == format!("{n}_bucket")
                    || name == format!("{n}_sum")
                    || name == format!("{n}_count")
            }
            _ => name == n,
        });
        assert!(family.is_some(), "sample `{series}` has no HELP/TYPE");
        assert!(
            samples.insert(series.to_string(), value).is_none(),
            "duplicate series `{series}`"
        );
    }
    samples
}

fn scrape(addr: SocketAddr) -> BTreeMap<String, f64> {
    let r = request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let content_type = r
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.clone())
        .unwrap_or_default();
    assert!(
        content_type.starts_with("text/plain"),
        "wrong content type: {content_type}"
    );
    parse_exposition(&r.body)
}

/// Cumulative series (counters and histogram cells) must never regress
/// between two scrapes; gauges are exempt.
fn assert_monotone(first: &BTreeMap<String, f64>, second: &BTreeMap<String, f64>) {
    for (series, value) in first {
        let cumulative = series.contains("_total")
            || series.contains("_bucket")
            || series.contains("_sum{")
            || series.ends_with("_sum")
            || series.contains("_count{")
            || series.ends_with("_count");
        if !cumulative {
            continue;
        }
        let now = second
            .get(series)
            .unwrap_or_else(|| panic!("series `{series}` vanished between scrapes"));
        assert!(
            now >= value,
            "cumulative series `{series}` regressed: {value} -> {now}"
        );
    }
}

#[test]
fn metrics_scrape_carries_job_histograms_and_discovery_instruments() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    run_job(addr, r#"{"dataset":"emp","config":{"epsilon":0.15}}"#);

    let first = scrape(addr);
    // The finished job landed in the per-dataset latency histogram.
    assert_eq!(
        first.get("aod_serve_job_duration_us_count{dataset=\"emp\"}"),
        Some(&1.0)
    );
    let inf = first
        .get("aod_serve_job_duration_us_bucket{dataset=\"emp\",le=\"+Inf\"}")
        .expect("+Inf bucket present");
    assert_eq!(*inf, 1.0);
    // The event sink fed the discovery instruments for this dataset.
    assert!(first["aod_discovery_ocs_found_total{dataset=\"emp\"}"] > 0.0);
    assert!(first["aod_discovery_levels_completed_total{dataset=\"emp\"}"] >= 1.0);
    assert!(first["aod_discovery_oc_candidates_total{dataset=\"emp\"}"] > 0.0);
    // Per-phase timing histograms exist for every phase label.
    for phase in ["oc_validation", "ofd_validation", "partitioning"] {
        let series =
            format!("aod_discovery_phase_duration_us_count{{dataset=\"emp\",phase=\"{phase}\"}}");
        assert!(first[&series] >= 1.0, "missing phase series {series}");
    }
    // Mirrored serve counters are present and plausible.
    assert!(first["aod_serve_requests_total"] >= 3.0);
    assert_eq!(first["aod_serve_jobs_submitted_total"], 1.0);
    assert_eq!(first["aod_serve_jobs_executed_total"], 1.0);
    assert_eq!(first["aod_serve_datasets"], 1.0);
    assert_eq!(first["aod_serve_datasets_capacity"], MAX_DATASETS as f64);

    // A cache-hit resubmission and a fresh config both move counters the
    // right way, and nothing cumulative regresses.
    run_job(addr, r#"{"dataset":"emp","config":{"epsilon":0.15}}"#);
    run_job(
        addr,
        r#"{"dataset":"emp","config":{"epsilon":0.1,"max_level":3}}"#,
    );
    let second = scrape(addr);
    assert_monotone(&first, &second);
    assert_eq!(second["aod_serve_jobs_submitted_total"], 3.0);
    assert_eq!(second["aod_serve_jobs_executed_total"], 2.0);
    assert!(second["aod_serve_cache_hits_total"] >= 1.0);
    assert_eq!(
        second["aod_serve_job_duration_us_count{dataset=\"emp\"}"], 2.0,
        "cache hits must not observe job latency"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn stats_reports_occupancy_capacity_and_rejections() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("datasets").unwrap().as_u64(), Some(1));
    assert_eq!(
        stats.get("registry_capacity").unwrap().as_u64(),
        Some(MAX_DATASETS as u64)
    );
    assert_eq!(stats.get("jobs_rejected").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("jobs_running").unwrap().as_u64(), Some(0));
    handle.shutdown();
    handle.join();
}

#[test]
fn admission_rejections_are_counted_in_stats_and_metrics() {
    // max_jobs = 1 and paced jobs make overflow deterministic.
    let server = Server::bind(&ServeConfig {
        bind: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        max_jobs: 1,
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let slow = r#"{"dataset":"emp","config":{"epsilon":0.1,"level_delay_ms":1500}}"#;
    let r = request(addr, "POST", "/jobs", Some(slow)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    let id = r.json().unwrap().get("id").unwrap().as_u64().unwrap();

    // While it runs, a second distinct job must be rejected with 429.
    let overflow = r#"{"dataset":"emp","config":{"epsilon":0.2,"level_delay_ms":1500}}"#;
    let rejected = request(addr, "POST", "/jobs", Some(overflow)).unwrap();
    assert_eq!(rejected.status, 429, "{}", rejected.body);

    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("jobs_rejected").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("jobs_running").unwrap().as_u64(), Some(1));
    let metrics = scrape(addr);
    assert_eq!(metrics["aod_serve_jobs_rejected_total"], 1.0);
    assert_eq!(metrics["aod_serve_jobs_running"], 1.0);

    // Let the paced job finish cleanly before shutdown.
    let _ = request(addr, "DELETE", &format!("/jobs/{id}"), None);
    handle.shutdown();
    handle.join();
}

/// A traced job serves its Chrome trace on `GET /jobs/{id}/trace`
/// (byte-stable across fetches), an untraced job answers 404, a running
/// job answers 409 — and the per-dataset executor queue-depth gauge
/// drains back to zero once the parallel batches complete.
#[test]
fn traced_jobs_serve_their_trace_and_the_queue_gauge_drains() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");

    let traced = r#"{"dataset":"emp","config":{"epsilon":0.15,"threads":2,"trace":true}}"#;
    let id = run_job(addr, traced);
    let first = request(addr, "GET", &format!("/jobs/{id}/trace"), None).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("content-type"), Some("application/json"));
    let events = first.json().expect("trace parses");
    let events = events
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace carries no spans");
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("discover")),
        "trace has no job span"
    );
    // The endpoint serves the stored trace byte for byte, every time.
    let second = request(addr, "GET", &format!("/jobs/{id}/trace"), None).unwrap();
    assert_eq!(second.body, first.body);

    // The job's parallel batches filled and drained the dataset's
    // executor queue-depth gauge; after completion it must read zero.
    let metrics = scrape(addr);
    assert_eq!(
        metrics.get("aod_exec_queue_depth{dataset=\"emp\"}"),
        Some(&0.0),
        "queue-depth gauge did not drain"
    );

    // An untraced job has no trace to serve.
    let plain_id = run_job(addr, r#"{"dataset":"emp","config":{"epsilon":0.2}}"#);
    let missing = request(addr, "GET", &format!("/jobs/{plain_id}/trace"), None).unwrap();
    assert_eq!(missing.status, 404, "{}", missing.body);

    // While a job is running the trace is not yet available: 409.
    let paced = r#"{"dataset":"emp","config":{"epsilon":0.1,"trace":true,"level_delay_ms":1500}}"#;
    let r = request(addr, "POST", "/jobs", Some(paced)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    let paced_id = r.json().unwrap().get("id").unwrap().as_u64().unwrap();
    let busy = request(addr, "GET", &format!("/jobs/{paced_id}/trace"), None).unwrap();
    assert_eq!(busy.status, 409, "{}", busy.body);
    let _ = request(addr, "DELETE", &format!("/jobs/{paced_id}"), None);

    handle.shutdown();
    handle.join();
}

/// Text-format conformance: a registered histogram with **zero
/// observations** still renders its full bucket ladder with `_sum 0` and
/// `_count 0`, and the `+Inf` bucket always equals `_count` — pinned
/// through the conformant [`Scrape`] reader, not string matching.
#[test]
fn zero_observation_histograms_render_a_complete_conformant_ladder() {
    let registry = Registry::new();
    let histogram = registry.histogram(
        "aod_serve_job_duration_us",
        "Job wall time from admission to completion, microseconds.",
        &[("dataset", "empty")],
    );
    let scrape = Scrape::parse(&registry.render()).expect("render parses");
    assert_eq!(
        scrape.family_type("aod_serve_job_duration_us"),
        Some("histogram")
    );
    for bound in BUCKET_BOUNDS_US {
        assert_eq!(
            scrape.value(
                "aod_serve_job_duration_us_bucket",
                &[("dataset", "empty"), ("le", &bound.to_string())],
            ),
            Some(0.0),
            "missing zero bucket le={bound}"
        );
    }
    let inf = scrape
        .value(
            "aod_serve_job_duration_us_bucket",
            &[("dataset", "empty"), ("le", "+Inf")],
        )
        .expect("+Inf bucket present");
    let count = scrape
        .value("aod_serve_job_duration_us_count", &[("dataset", "empty")])
        .expect("_count present");
    let sum = scrape
        .value("aod_serve_job_duration_us_sum", &[("dataset", "empty")])
        .expect("_sum present");
    assert_eq!((inf, count, sum), (0.0, 0.0, 0.0));

    // With observations — including one past the last finite bound —
    // the +Inf bucket still equals _count and the ladder stays
    // cumulative (monotone non-decreasing in `le`).
    histogram.observe(3);
    histogram.observe(5_000);
    histogram.observe(u64::MAX);
    let scrape = Scrape::parse(&registry.render()).expect("render parses");
    let mut previous = 0.0;
    for bound in BUCKET_BOUNDS_US {
        let cell = scrape
            .value(
                "aod_serve_job_duration_us_bucket",
                &[("dataset", "empty"), ("le", &bound.to_string())],
            )
            .expect("bucket present");
        assert!(cell >= previous, "ladder not cumulative at le={bound}");
        previous = cell;
    }
    let inf = scrape
        .value(
            "aod_serve_job_duration_us_bucket",
            &[("dataset", "empty"), ("le", "+Inf")],
        )
        .unwrap();
    let count = scrape
        .value("aod_serve_job_duration_us_count", &[("dataset", "empty")])
        .unwrap();
    assert_eq!(inf, 3.0);
    assert_eq!(inf, count, "+Inf bucket must equal _count");
}

/// Label escaping on per-dataset series round-trips through the
/// exposition: a dataset name containing the format's three escapes
/// (backslash, quote, newline) renders and parses back verbatim.
#[test]
fn per_dataset_gauge_labels_escape_and_round_trip() {
    let hostile = "flight \"2021\" \\ final\nbatch";
    let metrics = ServeMetrics::new();
    metrics.queue_depth_gauge(hostile).set(7);
    let text = metrics.render(&ServeSnapshot::default());
    let scrape = Scrape::parse(&text).expect("render with escaped labels parses");
    assert_eq!(
        scrape.value("aod_exec_queue_depth", &[("dataset", hostile)]),
        Some(7.0)
    );
    // The raw control characters never leak into the exposition text.
    for line in text.lines() {
        assert!(!line.contains('\u{0}'), "control character in exposition");
    }
}

/// The alerting rules and scrape config under `docs/observability/` can
/// only reference metric families the server actually exports: every
/// `aod_*` name in those files must appear in a populated registry
/// render. A rename in the code fails here, not in production.
#[test]
fn observability_docs_reference_only_exported_metric_names() {
    let docs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/observability");
    let mut referenced = Vec::new();
    for file in ["rules.yml", "prometheus.yml"] {
        let path = format!("{docs_dir}/{file}");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let bytes = text.as_bytes();
        let mut i = 0;
        while let Some(offset) = text[i..].find("aod_") {
            let start = i + offset;
            let mut end = start;
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase()
                    || bytes[end].is_ascii_digit()
                    || bytes[end] == b'_')
            {
                end += 1;
            }
            referenced.push((file, text[start..end].to_string()));
            i = end;
        }
    }
    assert!(
        referenced.len() >= 5,
        "docs reference suspiciously few metrics: {referenced:?}"
    );

    // A render with every family the server can export: mirrored serve
    // counters, a per-dataset latency histogram, the discovery
    // instruments, and the executor queue gauge.
    let metrics = ServeMetrics::new();
    metrics.queue_depth_gauge("docs");
    let _ = metrics.discovery_sink("docs");
    metrics.observe_job("docs", 0);
    let rendered = metrics.render(&ServeSnapshot::default());
    for (file, name) in &referenced {
        assert!(
            rendered.contains(name),
            "{file} references `{name}`, which the server does not export"
        );
    }
}
