//! End-to-end tests for `GET /metrics` (Prometheus text exposition) and
//! the extended `GET /stats` counters, over real loopback sockets.
//!
//! The acceptance bar: the scrape is structurally valid exposition text
//! (HELP/TYPE before samples, parseable values, no duplicate series),
//! carries the per-dataset job-latency histogram and the discovery
//! instruments populated by the job's event sink, and every cumulative
//! series is monotone across scrapes — including when a scrape races a
//! stale snapshot.

use aod::serve::client::request;
use aod::serve::{ServeConfig, Server, ServerHandle, MAX_DATASETS};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start_server() -> ServerHandle {
    let server = Server::bind(&ServeConfig {
        bind: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        max_jobs: 4,
    })
    .expect("bind ephemeral port");
    server.spawn().expect("spawn workers")
}

fn register_employee(addr: SocketAddr, name: &str) {
    let body = format!(r#"{{"name":"{name}","generate":{{"dataset":"employee"}}}}"#);
    let r = request(addr, "POST", "/datasets", Some(&body)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
}

fn run_job(addr: SocketAddr, body: &str) -> u64 {
    let r = request(addr, "POST", "/jobs", Some(body)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    let id = r.json().unwrap().get("id").unwrap().as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        let status = r
            .json()
            .unwrap()
            .get("status")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        if status != "running" {
            assert_eq!(status, "done", "{}", r.body);
            return id;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Parses a scrape into `series -> value` while asserting exposition
/// structure: every sample belongs to a family announced by `# HELP` and
/// `# TYPE` lines, values parse as floats, and no series repeats.
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut samples = BTreeMap::new();
    let mut announced: Vec<(String, String)> = Vec::new();
    let mut pending_help: Option<String> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap().to_string();
            assert!(pending_help.is_none(), "HELP without TYPE before {line}");
            pending_help = Some(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap().to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown TYPE kind in {line}"
            );
            assert_eq!(
                pending_help.take().as_deref(),
                Some(name.as_str()),
                "TYPE not immediately after its HELP: {line}"
            );
            announced.push((name, kind));
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().expect("sample value parses");
        let name = series.split('{').next().unwrap();
        let family = announced.iter().find(|(n, kind)| match kind.as_str() {
            "histogram" => {
                name == format!("{n}_bucket")
                    || name == format!("{n}_sum")
                    || name == format!("{n}_count")
            }
            _ => name == n,
        });
        assert!(family.is_some(), "sample `{series}` has no HELP/TYPE");
        assert!(
            samples.insert(series.to_string(), value).is_none(),
            "duplicate series `{series}`"
        );
    }
    samples
}

fn scrape(addr: SocketAddr) -> BTreeMap<String, f64> {
    let r = request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let content_type = r
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.clone())
        .unwrap_or_default();
    assert!(
        content_type.starts_with("text/plain"),
        "wrong content type: {content_type}"
    );
    parse_exposition(&r.body)
}

/// Cumulative series (counters and histogram cells) must never regress
/// between two scrapes; gauges are exempt.
fn assert_monotone(first: &BTreeMap<String, f64>, second: &BTreeMap<String, f64>) {
    for (series, value) in first {
        let cumulative = series.contains("_total")
            || series.contains("_bucket")
            || series.contains("_sum{")
            || series.ends_with("_sum")
            || series.contains("_count{")
            || series.ends_with("_count");
        if !cumulative {
            continue;
        }
        let now = second
            .get(series)
            .unwrap_or_else(|| panic!("series `{series}` vanished between scrapes"));
        assert!(
            now >= value,
            "cumulative series `{series}` regressed: {value} -> {now}"
        );
    }
}

#[test]
fn metrics_scrape_carries_job_histograms_and_discovery_instruments() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    run_job(addr, r#"{"dataset":"emp","config":{"epsilon":0.15}}"#);

    let first = scrape(addr);
    // The finished job landed in the per-dataset latency histogram.
    assert_eq!(
        first.get("aod_serve_job_duration_us_count{dataset=\"emp\"}"),
        Some(&1.0)
    );
    let inf = first
        .get("aod_serve_job_duration_us_bucket{dataset=\"emp\",le=\"+Inf\"}")
        .expect("+Inf bucket present");
    assert_eq!(*inf, 1.0);
    // The event sink fed the discovery instruments for this dataset.
    assert!(first["aod_discovery_ocs_found_total{dataset=\"emp\"}"] > 0.0);
    assert!(first["aod_discovery_levels_completed_total{dataset=\"emp\"}"] >= 1.0);
    assert!(first["aod_discovery_oc_candidates_total{dataset=\"emp\"}"] > 0.0);
    // Per-phase timing histograms exist for every phase label.
    for phase in ["oc_validation", "ofd_validation", "partitioning"] {
        let series =
            format!("aod_discovery_phase_duration_us_count{{dataset=\"emp\",phase=\"{phase}\"}}");
        assert!(first[&series] >= 1.0, "missing phase series {series}");
    }
    // Mirrored serve counters are present and plausible.
    assert!(first["aod_serve_requests_total"] >= 3.0);
    assert_eq!(first["aod_serve_jobs_submitted_total"], 1.0);
    assert_eq!(first["aod_serve_jobs_executed_total"], 1.0);
    assert_eq!(first["aod_serve_datasets"], 1.0);
    assert_eq!(first["aod_serve_datasets_capacity"], MAX_DATASETS as f64);

    // A cache-hit resubmission and a fresh config both move counters the
    // right way, and nothing cumulative regresses.
    run_job(addr, r#"{"dataset":"emp","config":{"epsilon":0.15}}"#);
    run_job(
        addr,
        r#"{"dataset":"emp","config":{"epsilon":0.1,"max_level":3}}"#,
    );
    let second = scrape(addr);
    assert_monotone(&first, &second);
    assert_eq!(second["aod_serve_jobs_submitted_total"], 3.0);
    assert_eq!(second["aod_serve_jobs_executed_total"], 2.0);
    assert!(second["aod_serve_cache_hits_total"] >= 1.0);
    assert_eq!(
        second["aod_serve_job_duration_us_count{dataset=\"emp\"}"], 2.0,
        "cache hits must not observe job latency"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn stats_reports_occupancy_capacity_and_rejections() {
    let handle = start_server();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("datasets").unwrap().as_u64(), Some(1));
    assert_eq!(
        stats.get("registry_capacity").unwrap().as_u64(),
        Some(MAX_DATASETS as u64)
    );
    assert_eq!(stats.get("jobs_rejected").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("jobs_running").unwrap().as_u64(), Some(0));
    handle.shutdown();
    handle.join();
}

#[test]
fn admission_rejections_are_counted_in_stats_and_metrics() {
    // max_jobs = 1 and paced jobs make overflow deterministic.
    let server = Server::bind(&ServeConfig {
        bind: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        max_jobs: 1,
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    register_employee(addr, "emp");
    let slow = r#"{"dataset":"emp","config":{"epsilon":0.1,"level_delay_ms":1500}}"#;
    let r = request(addr, "POST", "/jobs", Some(slow)).unwrap();
    assert_eq!(r.status, 201, "{}", r.body);
    let id = r.json().unwrap().get("id").unwrap().as_u64().unwrap();

    // While it runs, a second distinct job must be rejected with 429.
    let overflow = r#"{"dataset":"emp","config":{"epsilon":0.2,"level_delay_ms":1500}}"#;
    let rejected = request(addr, "POST", "/jobs", Some(overflow)).unwrap();
    assert_eq!(rejected.status, 429, "{}", rejected.body);

    let stats = request(addr, "GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(stats.get("jobs_rejected").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("jobs_running").unwrap().as_u64(), Some(1));
    let metrics = scrape(addr);
    assert_eq!(metrics["aod_serve_jobs_rejected_total"], 1.0);
    assert_eq!(metrics["aod_serve_jobs_running"], 1.0);

    // Let the paced job finish cleanly before shutdown.
    let _ = request(addr, "DELETE", &format!("/jobs/{id}"), None);
    handle.shutdown();
    handle.join();
}
