//! End-to-end checks of every worked example in the paper, through the
//! public facade API. Section/example numbers refer to the EDBT 2021 text.

use aod::prelude::*;

const POS: usize = 0;
const EXP: usize = 1;
const SAL: usize = 2;
const TAXGRP: usize = 3;
const PERC: usize = 4;
const TAX: usize = 5;
const BONUS: usize = 6;

fn ranked() -> RankedTable {
    RankedTable::from_table(&employee_table())
}

#[test]
fn section_1_1_sal_orders_taxgrp() {
    // "the OD that sal orders taxGrp holds".
    let t = ranked();
    assert!(list_od_holds(&t, &[SAL], &[TAXGRP]));
    // "taxGrp does not order sal as an FD does not hold".
    assert!(!list_od_holds(&t, &[TAXGRP], &[SAL]));
}

#[test]
fn section_1_1_perc_errors_break_sal_tax() {
    // "the OC that salary is order compatible with tax does not hold".
    let t = ranked();
    assert!(!aod::validate::list_oc_holds(&t, &[SAL], &[TAX]));
    // but perc itself is the dirty column; tax = sal × perc, so within
    // each (clean) tax group the relation would have held.
    assert!(!aod::validate::list_oc_holds(&t, &[SAL], &[PERC]));
}

#[test]
fn section_1_1_pos_exp_fd_exception() {
    // "the FD that pos, exp functionally determines sal does not hold, due
    // to the exception of tuples t6 and t7".
    let t = ranked();
    let out = validate_aofd(&t, AttrSet::from_attrs([POS, EXP]), SAL, 0.0);
    assert!(!out.is_valid());
    let forgiving = validate_aofd(&t, AttrSet::from_attrs([POS, EXP]), SAL, 1.0 / 9.0);
    assert!(forgiving.is_valid());
    assert_eq!(forgiving.removed, Some(1));
}

#[test]
fn section_1_1_minimal_removal_set_intro_example() {
    // "for Table 1 and the OC that pos, exp is order compatible with
    // pos, sal, the minimal removal set and the approximation factor are
    // {t8} and 1/9 ≈ 0.11".
    let t = ranked();
    let removed = aod::validate::list_oc_min_removal(&t, &[POS, EXP], &[POS, SAL], usize::MAX)
        .expect("no limit");
    assert_eq!(removed, 1);
}

#[test]
fn example_2_4_oc_taxgrp_sal() {
    // "The OC taxGrp ~ sal holds, even though the OD taxGrp |-> sal does not."
    let t = ranked();
    assert!(aod::validate::list_oc_holds(&t, &[TAXGRP], &[SAL]));
    assert!(!list_od_holds(&t, &[TAXGRP], &[SAL]));
}

#[test]
fn example_2_7_swap_and_split() {
    // t7/t8 constitute a swap w.r.t. pos,exp ~ pos,sal; t6/t7 a split
    // w.r.t. the FD. Check through the rank encodings.
    let t = ranked();
    let (xr, _) = aod::validate::projection_ranks(&t, &[POS, EXP]);
    let (yr, _) = aod::validate::projection_ranks(&t, &[POS, SAL]);
    // rows: t7 = index 6, t8 = index 7, t6 = index 5.
    assert!(aod::validate::is_swap((xr[6], yr[6]), (xr[7], yr[7])));
    assert!(aod::validate::is_split((xr[5], yr[5]), (xr[6], yr[6])));
}

#[test]
fn example_2_9_partition_of_pos() {
    // Π_pos = {{t1,t2,t4}, {t3,t5,t6,t7,t8}, {t9}}.
    let t = ranked();
    let p = Partition::for_attrs(&t, [POS]);
    assert_eq!(p.n_classes_unstripped(), 3);
    let mut sizes: Vec<usize> = p.classes().map(<[u32]>::len).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![3, 5]); // {t9} stripped
}

#[test]
fn example_2_12_canonical_deps() {
    let t = ranked();
    // {pos}: sal ~ bonus
    assert!(validate_aoc(
        &t,
        AttrSet::singleton(POS),
        SAL,
        BONUS,
        0.0,
        AocStrategy::Optimal
    )
    .is_valid());
    // {pos, sal}: [] |-> bonus
    assert!(validate_aofd(&t, AttrSet::from_attrs([POS, SAL]), BONUS, 0.0).is_valid());
    // therefore {pos}: sal |-> bonus
    assert!(validate_aod(&t, AttrSet::singleton(POS), SAL, BONUS, 0.0).is_valid());
}

#[test]
fn example_2_13_canonical_mapping_equivalence() {
    // The mapping itself is tested in aod-core; here: semantic equivalence
    // of [A,B] |-> [C,D]-style ODs against the direct validator, on the
    // employee table for several list choices.
    let t = ranked();
    let lists: &[(&[usize], &[usize])] = &[
        (&[POS, EXP], &[POS, SAL]),
        (&[SAL], &[TAXGRP, BONUS]),
        (&[SAL, EXP], &[TAXGRP, POS]),
        (&[TAXGRP, SAL], &[TAXGRP, BONUS]),
    ];
    for (x, y) in lists {
        assert_eq!(
            aod::core::check_list_od(&t, x, y),
            list_od_holds(&t, x, y),
            "{x:?} |-> {y:?}"
        );
    }
}

#[test]
fn example_2_15_minimal_removal_set() {
    // s = {t1, t2, t4, t6}, e(sal ~ tax) = 4/9.
    let t = ranked();
    let mut v = OcValidator::new();
    let ctx = Partition::unit(9);
    let set = v.removal_set_optimal(&ctx, t.column(SAL).ranks(), t.column(TAX).ranks());
    assert_eq!(set, vec![0, 1, 3, 5]);
    let out = validate_aoc(
        &t,
        AttrSet::EMPTY,
        SAL,
        TAX,
        4.0 / 9.0,
        AocStrategy::Optimal,
    );
    assert!(out.is_valid());
    assert!((out.factor().unwrap() - 4.0 / 9.0).abs() < 1e-12);
}

#[test]
fn example_3_1_iterative_removal_sequence() {
    // The iterative algorithm removes t7, then t5, t3, t6, t4:
    // s = {t3, t4, t5, t6, t7}, factor 5/9 — an overestimate.
    let t = ranked();
    let mut v = OcValidator::new();
    let ctx = Partition::unit(9);
    let set = v.removal_set_iterative(&ctx, t.column(SAL).ranks(), t.column(TAX).ranks());
    assert_eq!(set, vec![2, 3, 4, 5, 6]);
}

#[test]
fn example_3_2_lnds_removal() {
    // The LNDS over tax after sorting by [sal, tax] keeps
    // [0.3K, 1.5K, 1.8K, 7.2K, 16K].
    let t = ranked();
    let sorted_tax = [
        2_000u32, 2_500, 300, 12_000, 1_500, 16_500, 1_800, 7_200, 16_000,
    ];
    let keep = aod::lis::lnds_indices(&sorted_tax);
    let kept: Vec<u32> = keep.iter().map(|&i| sorted_tax[i as usize]).collect();
    assert_eq!(kept, vec![300, 1_500, 1_800, 7_200, 16_000]);
    assert_eq!(t.n_rows(), 9);
}

#[test]
fn theorem_6_1_reduction_lis_dec_to_aoc() {
    // The optimality proof's reduction: a LIS-DEC instance (list B) maps to
    // the AOC instance A ~ B over tuples (i, b_i); |LIS| >= k iff the AOC
    // is valid at eps = 1 - k/n. Verify on a concrete instance.
    let b = vec![5u32, 1, 8, 2, 9, 3, 10, 4, 11, 0];
    let n = b.len();
    let a: Vec<u32> = (0..n as u32).collect();
    let lis_len = aod::lis::lis_indices(&b).len();
    let table = RankedTable::from_u32_columns(vec![a, b]);
    for k in 1..=n {
        let eps = 1.0 - k as f64 / n as f64;
        let out = validate_aoc(&table, AttrSet::EMPTY, 0, 1, eps, AocStrategy::Optimal);
        assert_eq!(out.is_valid(), lis_len >= k, "k = {k}");
    }
}
