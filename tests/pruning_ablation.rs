//! Semantics of the pruning ablation: disabling rules must only ever *add*
//! implied/trivial dependencies to the output, never remove or change the
//! paper-faithful ones — the machine-checked version of the rules'
//! soundness arguments in `aod-core`'s driver docs.

use aod::core::PruneConfig;
use aod::prelude::*;
use aod_bench::Dataset;
use std::collections::BTreeSet;

type Key = (u64, usize, usize);

fn keys(result: &DiscoveryResult) -> BTreeSet<Key> {
    result
        .ocs
        .iter()
        .map(|d| (d.context.bits(), d.a, d.b))
        .collect()
}

fn run(table: &RankedTable, eps: f64, prune: PruneConfig) -> DiscoveryResult {
    discover(
        table,
        &DiscoveryConfig::approximate(eps)
            .with_max_level(5)
            .with_pruning(prune),
    )
}

#[test]
fn disabling_rules_is_monotone() {
    for ds in [Dataset::Flight, Dataset::Ncvoter] {
        let table = ds.ranked_10(1_500, 3);
        let baseline = keys(&run(&table, 0.1, PruneConfig::default()));
        for variant in [
            PruneConfig {
                r2_context_implication: false,
                ..PruneConfig::default()
            },
            PruneConfig {
                r3_constancy_implication: false,
                ..PruneConfig::default()
            },
            PruneConfig {
                r4_key_pruning: false,
                ..PruneConfig::default()
            },
            PruneConfig {
                node_deletion: false,
                ..PruneConfig::default()
            },
            PruneConfig::none(),
        ] {
            let relaxed = keys(&run(&table, 0.1, variant));
            for k in &baseline {
                assert!(
                    relaxed.contains(k),
                    "{}: {variant:?} lost baseline dependency {k:?}",
                    ds.name()
                );
            }
        }
    }
}

#[test]
fn r4_extras_are_exactly_keyed_contexts() {
    let table = Dataset::Flight.ranked_10(1_000, 5);
    let with = run(&table, 0.1, PruneConfig::default());
    let without = run(
        &table,
        0.1,
        PruneConfig {
            r4_key_pruning: false,
            ..PruneConfig::default()
        },
    );
    let base = keys(&with);
    for extra in keys(&without).difference(&base) {
        let (bits, _, _) = *extra;
        let ctx = Partition::for_attrs(
            &table,
            (0..table.n_cols()).filter(|&a| bits & (1 << a) != 0),
        );
        assert!(ctx.is_key(), "extra OC in non-keyed context {bits:#b}");
    }
}

#[test]
fn r2_extras_have_a_valid_subcontext() {
    let table = Dataset::Ncvoter.ranked_10(1_500, 5);
    let with = run(&table, 0.15, PruneConfig::default());
    let without = run(
        &table,
        0.15,
        PruneConfig {
            r2_context_implication: false,
            ..PruneConfig::default()
        },
    );
    let base = keys(&with);
    let relaxed = keys(&without);
    let budget = removal_budget(table.n_rows(), 0.15);
    let mut v = OcValidator::new();
    for &(bits, a, b) in relaxed.difference(&base) {
        // every extra must be implied: some reported sub-context OC for the
        // same pair, or (rarely) an R3/valid-OFD implication — in all cases
        // the extra is at least *valid*, never garbage.
        let ctx = Partition::for_attrs(
            &table,
            (0..table.n_cols()).filter(|&x| bits & (1 << x) != 0),
        );
        let removed = v
            .min_removal_optimal(
                &ctx,
                table.column(a).ranks(),
                table.column(b).ranks(),
                usize::MAX,
            )
            .expect("no limit");
        assert!(removed <= budget, "invalid extra ({bits:#b},{a},{b})");
    }
}
