//! The hybrid strategy's correctness contract: because the sampling
//! pre-check is *reject-only and sound* (a sample's minimal removal count
//! lower-bounds the full table's), discovery with
//! `AocStrategy::Hybrid { stride }` must be **bit-identical** to
//! `AocStrategy::Optimal` — same event stream, same dependency lists
//! (including `f64` factors and coverage), same per-level counters — for
//! every stride, every ε and every thread count. The only permitted
//! differences are the `Duration` timers, `threads_used`, and the two
//! sampling counters themselves (`n_sample_hits`/`n_sample_misses`), which
//! are definitionally zero for the optimal backend.
//!
//! Acceptance matrix: stride ∈ {1, 4, 16} × ε ∈ {0, 0.1, 0.3} ×
//! threads ∈ {1, 4}.

use aod::datagen::dirty::{inject_concatenated_zero, inject_transpositions};
use aod::datagen::flight;
use aod::prelude::*;

const STRIDES: [usize; 3] = [1, 4, 16];
const EPSILONS: [f64; 3] = [0.0, 0.1, 0.3];
const THREADS: [usize; 2] = [1, 4];

/// A flight-shaped table with injected dirt (the paper's concatenated-zero
/// error plus transposition noise), projected to 6 columns — small enough
/// for the debug-profile matrix, dirty enough that the sampling pre-check
/// actually fires.
fn dirty_flight(rows: usize) -> RankedTable {
    let mut table = flight::flight(7).table(rows);
    // arrDelay (10) and lateAircraftDelay (24) carry the planted
    // near-threshold OC; dirty them and two context-ish columns.
    inject_concatenated_zero(&mut table, 10, 0.15, 11);
    inject_transpositions(&mut table, 24, 0.2, 13);
    inject_transpositions(&mut table, 1, 0.1, 17);
    RankedTable::from_table(&table).with_first_columns(6)
}

fn run(
    table: &RankedTable,
    epsilon: f64,
    strategy: AocStrategy,
    threads: usize,
) -> (Vec<DiscoveryEvent>, DiscoveryResult) {
    let mut session = DiscoveryBuilder::new()
        .approximate(epsilon)
        .strategy(strategy)
        .parallelism(threads)
        .build(table);
    let events: Vec<DiscoveryEvent> = session.by_ref().collect();
    (events, session.into_result())
}

/// Zeroes the sampling counters inside `LevelComplete` events so hybrid
/// and optimal streams can be compared bytewise on everything else.
fn scrub_events(events: &[DiscoveryEvent]) -> Vec<DiscoveryEvent> {
    events
        .iter()
        .cloned()
        .map(|event| match event {
            DiscoveryEvent::LevelComplete(mut outcome) => {
                outcome.stats.n_sample_hits = 0;
                outcome.stats.n_sample_misses = 0;
                DiscoveryEvent::LevelComplete(outcome)
            }
            other => other,
        })
        .collect()
}

fn scrub_levels(levels: &[aod::core::LevelStats]) -> Vec<aod::core::LevelStats> {
    levels
        .iter()
        .cloned()
        .map(|mut l| {
            l.n_sample_hits = 0;
            l.n_sample_misses = 0;
            l
        })
        .collect()
}

/// The full acceptance matrix on both tables: hybrid ≡ optimal on events,
/// dependency lists and counters, for every stride × ε × thread count.
#[test]
fn hybrid_is_bit_identical_to_optimal_across_the_matrix() {
    let tables = [
        ("employee", RankedTable::from_table(&employee_table())),
        ("dirty-flight", dirty_flight(400)),
    ];
    for (name, table) in &tables {
        for epsilon in EPSILONS {
            let (base_events, base) = run(table, epsilon, AocStrategy::Optimal, 1);
            assert!(
                base.stats.n_sample_hits() == 0 && base.stats.n_sample_misses() == 0,
                "optimal must never report sampling counters"
            );
            for stride in STRIDES {
                for threads in THREADS {
                    let label = format!("{name}, eps {epsilon}, stride {stride}, t{threads}");
                    let (events, result) =
                        run(table, epsilon, AocStrategy::Hybrid { stride }, threads);
                    assert_eq!(scrub_events(&events), scrub_events(&base_events), "{label}");
                    assert_eq!(result.ocs, base.ocs, "{label}");
                    assert_eq!(result.ofds, base.ofds, "{label}");
                    assert_eq!(
                        scrub_levels(&result.stats.per_level),
                        scrub_levels(&base.stats.per_level),
                        "{label}"
                    );
                    // Stride 1 means the pre-check is off entirely.
                    if stride == 1 {
                        assert_eq!(result.stats.n_sample_hits(), 0, "{label}");
                        assert_eq!(result.stats.n_sample_misses(), 0, "{label}");
                    }
                }
            }
        }
    }
}

/// Across thread counts the hybrid run is *fully* bit-identical — the
/// sampling counters included, because the adaptive stride schedule is
/// driven by counters the engine merges deterministically at each level
/// barrier.
#[test]
fn hybrid_parallel_matches_hybrid_sequential_including_sample_counters() {
    let tables = [
        ("employee", RankedTable::from_table(&employee_table())),
        ("dirty-flight", dirty_flight(400)),
    ];
    for (name, table) in &tables {
        for epsilon in EPSILONS {
            for stride in STRIDES {
                let label = format!("{name}, eps {epsilon}, stride {stride}");
                let strategy = AocStrategy::Hybrid { stride };
                let (seq_events, seq) = run(table, epsilon, strategy, 1);
                let (par_events, par) = run(table, epsilon, strategy, 4);
                assert_eq!(par_events, seq_events, "{label}");
                assert_eq!(par.ocs, seq.ocs, "{label}");
                assert_eq!(par.ofds, seq.ofds, "{label}");
                assert_eq!(par.stats.per_level, seq.stats.per_level, "{label}");
                assert_eq!(
                    par.stats.n_sample_hits(),
                    seq.stats.n_sample_hits(),
                    "{label}"
                );
            }
        }
    }
}

/// The suite must not be vacuous: on the dirty table with a small ε the
/// pre-check actually rejects candidates, and the per-level counters show
/// up both in the stats and in the `level_complete` wire events.
#[test]
fn sampling_counters_fire_on_dirty_data_and_reach_the_wire() {
    let table = dirty_flight(400);
    let (events, result) = run(&table, 0.05, AocStrategy::Hybrid { stride: 8 }, 1);
    assert!(
        result.stats.n_sample_hits() > 0,
        "expected sample rejections on dirty data, got {:?}",
        result
            .stats
            .per_level
            .iter()
            .map(|l| (l.n_sample_hits, l.n_sample_misses))
            .collect::<Vec<_>>()
    );
    // Per-level counters reconcile with candidate counts: every validated
    // candidate is a hit, a miss, or validated with the pre-check off.
    for l in &result.stats.per_level {
        assert!(
            l.n_sample_hits + l.n_sample_misses <= l.n_oc_candidates,
            "level {}: {} + {} > {}",
            l.level,
            l.n_sample_hits,
            l.n_sample_misses,
            l.n_oc_candidates
        );
    }
    // The wire encoding carries the counters.
    let wired: Vec<String> = events.iter().map(|e| e.to_json()).collect();
    assert!(
        wired.iter().any(
            |line| line.contains("\"n_sample_hits\":") && !line.contains("\"n_sample_hits\":0")
        ),
        "no level_complete event carried a non-zero n_sample_hits"
    );
    // And the result encoding parses back with the counters present.
    let parsed = aod::core::json::JsonValue::parse(&result.to_json()).unwrap();
    let levels = parsed
        .get("stats")
        .unwrap()
        .get("per_level")
        .unwrap()
        .as_array()
        .unwrap();
    let total: u64 = levels
        .iter()
        .map(|l| l.get("n_sample_hits").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(total, result.stats.n_sample_hits() as u64);
}

/// The compat `discover()` path works with the hybrid config constructors
/// and agrees with the builder path.
#[test]
fn hybrid_config_constructors_plumb_through_discover() {
    let table = RankedTable::from_table(&employee_table());
    let via_config = discover(&table, &DiscoveryConfig::approximate_hybrid(0.15, 4));
    let via_builder = DiscoveryBuilder::new()
        .approximate(0.15)
        .strategy(AocStrategy::Hybrid { stride: 4 })
        .run(&table);
    let optimal = discover(&table, &DiscoveryConfig::approximate(0.15));
    assert_eq!(via_config.ocs, via_builder.ocs);
    assert_eq!(via_config.ocs, optimal.ocs);
    assert_eq!(via_config.ofds, optimal.ofds);
}
