//! Cross-crate property tests: the lattice discovery driver against a
//! brute-force specification.
//!
//! The specification of the discovered AOC set (DESIGN.md §3.4): report
//! every candidate `C: A ~ B` such that
//!
//! 1. its minimal removal set is within the ε-budget (**valid** — decided
//!    by the provably-minimal Algorithm 2 validator),
//! 2. the context partition is not a key (R4 — otherwise trivial),
//! 3. no strict sub-context is valid for the same pair (R2 — implied), and
//! 4. no attribute of the pair is (approximately) constant in any
//!    sub-context (R3 — implied by an OFD).
//!
//! The driver must report **at least** this set (completeness), and
//! everything it reports must be valid, non-trivial and R2-minimal
//! (soundness). In exact mode the two sets coincide exactly; in
//! approximate mode the driver may additionally report candidates that
//! rule 4 would have suppressed, because its R3 uses *reported* (TANE-
//! convention-minimal) OFDs rather than all valid ones — extra output,
//! never missing output.

use aod_core::{discover, DiscoveryConfig};
use aod_partition::Partition;
use aod_table::RankedTable;
use aod_validate::{min_removal_ofd, removal_budget, OcValidator};
use proptest::prelude::*;
use std::collections::BTreeSet;

type Candidate = (u64, usize, usize); // (context bits, a, b)

/// The brute-force specification set (rules 1–4 above).
fn spec_ocs(table: &RankedTable, epsilon: f64) -> BTreeSet<Candidate> {
    let n_attrs = table.n_cols();
    let budget = removal_budget(table.n_rows(), epsilon);
    let mut validator = OcValidator::new();

    let mut partitions: Vec<Partition> = Vec::with_capacity(1 << n_attrs);
    for bits in 0..(1u64 << n_attrs) {
        let attrs = (0..n_attrs).filter(|&a| bits & (1 << a) != 0);
        partitions.push(Partition::for_attrs(table, attrs));
    }

    let oc_valid = |v: &mut OcValidator, bits: u64, a: usize, b: usize| -> bool {
        v.min_removal_optimal(
            &partitions[bits as usize],
            table.column(a).ranks(),
            table.column(b).ranks(),
            budget,
        )
        .is_some()
    };
    let ofd_valid = |bits: u64, rhs: usize| -> bool {
        let col = table.column(rhs);
        min_removal_ofd(
            &partitions[bits as usize],
            col.ranks(),
            col.n_distinct(),
            budget,
        )
        .is_some()
    };

    let mut out = BTreeSet::new();
    for bits in 0..(1u64 << n_attrs) {
        for a in 0..n_attrs {
            for b in a + 1..n_attrs {
                if bits & (1 << a) != 0 || bits & (1 << b) != 0 {
                    continue;
                }
                // rule 2: non-key context
                if partitions[bits as usize].is_key() {
                    continue;
                }
                // rule 1: valid
                if !oc_valid(&mut validator, bits, a, b) {
                    continue;
                }
                // rule 3: no valid strict sub-context for the same pair
                let strict_subsets = |sub: u64| sub != bits && sub & bits == sub;
                let r2 = (0..(1u64 << n_attrs))
                    .filter(|&sub| strict_subsets(sub))
                    .any(|sub| oc_valid(&mut validator, sub, a, b));
                if r2 {
                    continue;
                }
                // rule 4: no valid OFD on a or b in any sub-context
                let r3 = (0..=bits)
                    .filter(|&sub| sub & bits == sub)
                    .any(|sub| ofd_valid(sub, a) || ofd_valid(sub, b));
                if r3 {
                    continue;
                }
                out.insert((bits, a, b));
            }
        }
    }
    out
}

fn driver_ocs(table: &RankedTable, config: &DiscoveryConfig) -> BTreeSet<Candidate> {
    discover(table, config)
        .ocs
        .iter()
        .map(|d| (d.context.bits(), d.a, d.b))
        .collect()
}

/// Checks the two-sided containment (and exact equality for ε = 0).
fn check_table(columns: Vec<Vec<u32>>, epsilon: f64) -> Result<(), TestCaseError> {
    let table = RankedTable::from_u32_columns(columns);
    let n = table.n_rows();
    let budget = removal_budget(n, epsilon);
    let spec = spec_ocs(&table, epsilon);
    let config = if epsilon == 0.0 {
        DiscoveryConfig::exact()
    } else {
        DiscoveryConfig::approximate(epsilon)
    };
    let reported = driver_ocs(&table, &config);

    // completeness: spec ⊆ reported
    for cand in &spec {
        prop_assert!(
            reported.contains(cand),
            "missing spec candidate {cand:?} (eps {epsilon})"
        );
    }
    // soundness: reported candidates are valid, non-trivial, R2-minimal
    let mut validator = OcValidator::new();
    for &(bits, a, b) in &reported {
        let ctx = Partition::for_attrs(
            &table,
            (0..table.n_cols()).filter(|&x| bits & (1 << x) != 0),
        );
        prop_assert!(!ctx.is_key(), "keyed context reported: {bits:#b} {a} {b}");
        let removed = validator
            .min_removal_optimal(
                &ctx,
                table.column(a).ranks(),
                table.column(b).ranks(),
                usize::MAX,
            )
            .expect("no limit");
        prop_assert!(
            removed <= budget,
            "invalid OC reported ({removed} > {budget})"
        );
        for &(bits2, a2, b2) in &reported {
            if (a2, b2) == (a, b) && bits2 != bits {
                prop_assert!(
                    bits2 & bits != bits2,
                    "non-minimal pair: {bits2:#b} ⊆ {bits:#b} for ({a},{b})"
                );
            }
        }
    }
    // exact mode: the sets coincide exactly
    if epsilon == 0.0 {
        prop_assert_eq!(&reported, &spec);
    }
    Ok(())
}

fn small_table() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (2usize..14, 2usize..5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::collection::vec(0u32..4, rows), cols)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_discovery_matches_spec(columns in small_table()) {
        check_table(columns, 0.0)?;
    }

    #[test]
    fn approximate_discovery_covers_spec(columns in small_table(), pct in 5u32..40) {
        check_table(columns, pct as f64 / 100.0)?;
    }
}

#[test]
fn employee_exact_matches_spec() {
    let ranked = RankedTable::from_table(&aod_table::employee_table());
    // project to 5 columns to keep the 2^5 × pairs brute force quick
    let table = RankedTable::from_u32_columns(
        [0usize, 1, 2, 3, 5]
            .iter()
            .map(|&c| ranked.column(c).ranks().to_vec())
            .collect(),
    );
    let spec = spec_ocs(&table, 0.0);
    let reported = driver_ocs(&table, &DiscoveryConfig::exact());
    assert_eq!(spec, reported);
}

#[test]
fn employee_approximate_covers_spec() {
    let ranked = RankedTable::from_table(&aod_table::employee_table());
    let table = RankedTable::from_u32_columns(
        [0usize, 1, 3, 5, 6]
            .iter()
            .map(|&c| ranked.column(c).ranks().to_vec())
            .collect(),
    );
    for eps in [0.12, 0.25, 0.45] {
        let spec = spec_ocs(&table, eps);
        let reported = driver_ocs(&table, &DiscoveryConfig::approximate(eps));
        for cand in &spec {
            assert!(reported.contains(cand), "missing {cand:?} at eps {eps}");
        }
    }
}

#[test]
fn iterative_driver_reports_subset_of_valid() {
    // Whatever the iterative validator reports must still be genuinely
    // valid (its estimates only over-count, so anything accepted within
    // budget is truly within budget).
    let ranked = RankedTable::from_table(&aod_table::employee_table());
    let eps = 0.3;
    let budget = removal_budget(9, eps);
    let result = discover(&ranked, &DiscoveryConfig::approximate_iterative(eps));
    let mut validator = OcValidator::new();
    for dep in &result.ocs {
        let ctx = Partition::for_attrs(&ranked, dep.context.iter());
        let true_removed = validator
            .min_removal_optimal(
                &ctx,
                ranked.column(dep.a).ranks(),
                ranked.column(dep.b).ranks(),
                usize::MAX,
            )
            .expect("no limit");
        assert!(
            true_removed <= dep.removed,
            "iterative under-reported {dep:?}"
        );
        assert!(dep.removed <= budget);
    }
}
