//! Head-to-head comparison of the paper's two AOC validators on one
//! candidate — Algorithm 2 (optimal, LNDS) vs. Algorithm 1 (iterative):
//! runtime scaling and removal-set minimality (the paper's Section 3 and
//! Exp-4 in miniature).
//!
//! Both algorithms are driven through the pluggable
//! [`OcValidatorBackend`] trait — the same interface the discovery engine
//! dispatches through, so a custom backend benchmarked here drops
//! straight into `DiscoveryBuilder::validator`.
//!
//! Run with: `cargo run --release --example validator_comparison`

use aod::datagen::{ColumnKind, ColumnSpec, Generator};
use aod::prelude::*;
use std::time::Instant;

fn main() {
    println!("single-candidate validation: optimal (Alg. 2) vs iterative (Alg. 1)\n");
    println!(
        "{:>8}  {:>12} {:>12}  {:>9} {:>9}  {:>8}",
        "rows", "optimal", "iterative", "opt |s|", "iter |s|", "overest"
    );

    let mut optimal = strategy_backend(AocStrategy::Optimal);
    let mut iterative = strategy_backend(AocStrategy::Iterative);
    for &rows in &[1_000usize, 4_000, 16_000, 64_000] {
        // One dirty monotone pair: ~10% of values shuffled out of order.
        let generator = Generator::new(
            vec![
                ColumnSpec::new(
                    "a",
                    ColumnKind::Uniform {
                        cardinality: rows as u32 / 2,
                    },
                ),
                ColumnSpec::new(
                    "b",
                    ColumnKind::MonotoneOf {
                        source: 0,
                        noise_rate: 0.10,
                    },
                ),
            ],
            9,
        );
        let t = generator.ranked(rows);
        let ctx = Partition::unit(rows);
        let (a, b) = (t.column(0).ranks(), t.column(1).ranks());

        let t0 = Instant::now();
        let opt = optimal.min_removal(&ctx, a, b, usize::MAX).unwrap();
        let opt_time = t0.elapsed();

        let t0 = Instant::now();
        let iter = iterative.min_removal(&ctx, a, b, usize::MAX).unwrap();
        let iter_time = t0.elapsed();

        println!(
            "{rows:>8}  {:>12.2?} {:>12.2?}  {opt:>9} {iter:>9}  {:>7.2}%",
            opt_time,
            iter_time,
            100.0 * (iter as f64 - opt as f64) / (opt as f64).max(1.0)
        );
    }

    println!(
        "\nthe iterative baseline grows quadratically (ε·n² swap updates) while \
         the LNDS validator stays n·log n,"
    );
    println!("and its removal sets overestimate the minimum — which can reject true AOCs near the threshold.");

    // The near-threshold miss, concretely (the paper's Exp-4 example shape):
    let generator = Generator::new(
        vec![
            ColumnSpec::new("arrDelay", ColumnKind::Uniform { cardinality: 400 }),
            ColumnSpec::new(
                "lateAircraftDelay",
                ColumnKind::MonotoneOf {
                    source: 0,
                    noise_rate: 0.095,
                },
            ),
        ],
        4242,
    );
    let t = generator.ranked(10_000);
    let eps = 0.06;
    let opt = validate_aoc(&t, AttrSet::EMPTY, 0, 1, eps, AocStrategy::Optimal);
    let it = validate_aoc(&t, AttrSet::EMPTY, 0, 1, eps, AocStrategy::Iterative);
    println!(
        "\nnear-threshold candidate at ε = {eps}: optimal says {}, iterative says {}",
        if opt.is_valid() { "VALID" } else { "invalid" },
        if it.is_valid() { "VALID" } else { "invalid" },
    );
    if opt.is_valid() && !it.is_valid() {
        println!("-> the iterative algorithm misses a true AOC (incompleteness the paper fixes)");
    }
}
