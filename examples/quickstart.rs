//! Quickstart: discover approximate order dependencies in the paper's
//! running example (Table 1, employee salaries) with the streaming
//! `DiscoverySession` API.
//!
//! Run with: `cargo run --release --example quickstart`

use aod::prelude::*;

fn main() {
    // Table 1 of the paper: 9 employees, 7 attributes, with the dirty
    // `perc` column ("10%" instead of "1%" in some rows).
    let table = employee_table();
    let ranked = RankedTable::from_table(&table);
    let names = table.schema().names();

    // --- Exact discovery (one-shot): the dirt hides most dependencies. --
    let exact = DiscoveryBuilder::new().exact().run(&ranked);
    println!("=== exact ODs ===");
    println!("{}", exact.report(&names));

    // --- Approximate discovery at ε = 25%, streamed. --------------------
    // The session emits an event per found dependency and per completed
    // lattice level; long runs stay observable and cancellable.
    // `.parallelism(0)` validates each lattice level on one worker per
    // core — results (and this event stream) are bit-identical to the
    // sequential run, so parallelism is purely a wall-clock knob.
    println!("=== approximate ODs (ε = 25%), streaming ===");
    let mut session = DiscoveryBuilder::new()
        .approximate(0.25)
        .parallelism(0)
        .build(&ranked);
    for event in session.by_ref() {
        match event {
            DiscoveryEvent::OcFound(dep) => println!("  found {}", dep.display(&names)),
            DiscoveryEvent::OfdFound(dep) => println!("  found {}", dep.display(&names)),
            DiscoveryEvent::LevelComplete(outcome) => println!(
                "  -- level {} done: {} nodes, {} candidates pruned",
                outcome.level, outcome.stats.n_nodes, outcome.stats.n_oc_pruned
            ),
            _ => {}
        }
    }
    let approx = session.into_result();
    println!("\n{}", approx.report(&names));

    // --- Validate a single candidate: Example 2.15. ---------------------
    // e(sal ~ tax) = 4/9 ≈ 0.44: the intended dependency between salary
    // and tax survives the dirty percentages once 4 tuples are set aside.
    let sal = table.schema().index_of("sal").unwrap();
    let tax = table.schema().index_of("tax").unwrap();
    let outcome = validate_aoc(&ranked, AttrSet::EMPTY, sal, tax, 0.5, AocStrategy::Optimal);
    println!(
        "e(sal ~ tax) = {}/{} = {:.3} -> {}",
        outcome.removed.unwrap(),
        outcome.n_rows,
        outcome.factor().unwrap(),
        if outcome.is_valid() {
            "VALID at ε = 0.5"
        } else {
            "INVALID at ε = 0.5"
        },
    );

    // The minimal removal set pinpoints the rows carrying the errors.
    let mut validator = OcValidator::new();
    let ctx = Partition::unit(ranked.n_rows());
    let removal =
        validator.removal_set_optimal(&ctx, ranked.column(sal).ranks(), ranked.column(tax).ranks());
    println!("rows to inspect for data errors (0-based): {removal:?}");
    for &row in &removal {
        let values: Vec<String> = table
            .row(row as usize)
            .iter()
            .map(ToString::to_string)
            .collect();
        println!("  t{} = [{}]", row + 1, values.join(", "));
    }
}
