//! Data-cleaning workflow on a flight-shaped dataset (the paper's Exp-4 /
//! Exp-6 scenario): discover approximate OCs, then use their minimal
//! removal sets to surface the rows that violate the intended rule.
//!
//! The synthetic `flight` dataset plants the AOC
//! `arrDelay ~ lateAircraftDelay` at ≈ 9.5% — "delays in arrival are due to
//! the aircraft and not other causes" — and `originAirport ~ originIATA`
//! at ≈ 8%, the airport-identifier consistency rule.
//!
//! Run with: `cargo run --release --example data_cleaning`

use aod::datagen::flight;
use aod::prelude::*;

fn main() {
    let rows = 20_000;
    let generator = flight::flight(42);
    let ranked_full = generator.ranked(rows);
    let names_full = generator.names();

    // Work on the default 10-attribute projection the paper uses.
    let cols: Vec<Vec<u32>> = flight::DEFAULT_10
        .iter()
        .map(|&c| ranked_full.column(c).ranks().to_vec())
        .collect();
    let names: Vec<&str> = flight::DEFAULT_10.iter().map(|&c| names_full[c]).collect();
    let ranked = RankedTable::from_u32_columns(cols);

    println!(
        "discovering AOCs over {rows} flights × {} attributes (ε = 10%)...",
        names.len()
    );
    let result = discover(&ranked, &DiscoveryConfig::approximate(0.10));
    println!(
        "found {} AOCs and {} AOFDs in {:.2}s\n",
        result.n_ocs(),
        result.n_ofds(),
        result.stats.total.as_secs_f64()
    );

    println!("top approximate OCs by interestingness:");
    for dep in result.ranked_ocs().into_iter().take(8) {
        println!("  {}", dep.display(&names));
    }

    // Drill into the planted rule: arrDelay ~ lateAircraftDelay.
    let a = names.iter().position(|&n| n == "arrDelay").unwrap();
    let b = names
        .iter()
        .position(|&n| n == "lateAircraftDelay")
        .unwrap();
    let mut validator = OcValidator::new();
    let ctx = Partition::unit(ranked.n_rows());
    let removal =
        validator.removal_set_optimal(&ctx, ranked.column(a).ranks(), ranked.column(b).ranks());
    println!(
        "\narrDelay ~ lateAircraftDelay: e = {}/{} = {:.3}",
        removal.len(),
        rows,
        removal.len() as f64 / rows as f64
    );
    println!(
        "-> {} rows flagged as exceptions; in a cleaning pipeline these go \
         to review (weather/security delays or data errors)",
        removal.len()
    );
    println!(
        "   first flagged rows: {:?}",
        &removal[..removal.len().min(10)]
    );

    // An exact run on the same data would have lost the rule entirely.
    let exact = discover(&ranked, &DiscoveryConfig::exact());
    let kept = exact
        .ocs
        .iter()
        .any(|d| (d.a, d.b) == (a.min(b), a.max(b)) && d.context.is_empty());
    println!(
        "\nexact discovery {} the arrDelay rule ({} exact OCs total) — \
         approximate discovery is what recovers it",
        if kept { "kept" } else { "missed" },
        exact.n_ocs()
    );
}
