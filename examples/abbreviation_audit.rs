//! Auditing code/label consistency on an ncvoter-shaped dataset — the
//! paper's Exp-6 example: `municipalityAbbrv ~ municipalityDesc` holds
//! approximately because most abbreviations follow alphabetical order, but
//! some ("RAL" for Raleigh vs. "CLT" for Charlotte) break it.
//!
//! The example also shows the paper's threshold-sensitivity point: the
//! same dependency is valid at ε = 20% but invalid at ε = 5%, so the
//! threshold controls how general a rule the analyst accepts.
//!
//! Run with: `cargo run --release --example abbreviation_audit`

use aod::datagen::ncvoter;
use aod::prelude::*;

fn main() {
    let rows = 20_000;
    let generator = ncvoter::ncvoter(7);
    let ranked = generator.ranked(rows);
    let names = generator.names();

    let desc = ncvoter::MUNICIPALITY_DESC;
    let abbrv = ncvoter::MUNICIPALITY_ABBRV;
    let street = ncvoter::STREET_ADDRESS;
    let mail = ncvoter::MAIL_ADDRESS;

    println!("auditing {rows} voter records for naming-consistency rules\n");

    // Sweep the threshold for the two planted rules.
    for (a, b, label) in [
        (desc, abbrv, "municipalityDesc ~ municipalityAbbrv"),
        (street, mail, "streetAddress ~ mailAddress"),
    ] {
        let exact = validate_aoc(&ranked, AttrSet::EMPTY, a, b, 0.0, AocStrategy::Optimal);
        print!(
            "{label}: exact? {}",
            if exact.is_valid() { "yes" } else { "no" }
        );
        let factor = validate_aoc(&ranked, AttrSet::EMPTY, a, b, 1.0, AocStrategy::Optimal)
            .factor()
            .unwrap();
        println!("  (true approximation factor {factor:.3})");
        for eps in [0.05, 0.10, 0.20, 0.25] {
            let out = validate_aoc(&ranked, AttrSet::EMPTY, a, b, eps, AocStrategy::Optimal);
            println!(
                "   ε = {:>4.0}% -> {}",
                eps * 100.0,
                if out.is_valid() { "VALID" } else { "invalid" }
            );
        }
    }

    // The exceptions themselves are the audit targets: voters whose
    // municipality abbreviation breaks the alphabetical-consistency rule.
    let mut validator = OcValidator::new();
    let ctx = Partition::unit(ranked.n_rows());
    let removal = validator.removal_set_optimal(
        &ctx,
        ranked.column(desc).ranks(),
        ranked.column(abbrv).ranks(),
    );
    println!(
        "\n{} records carry abbreviation exceptions ({}% of the table)",
        removal.len(),
        100 * removal.len() / rows
    );

    // Discovery over the 10-column projection confirms both rules rank
    // among the most interesting AOCs, as the paper reports.
    let cols: Vec<Vec<u32>> = ncvoter::DEFAULT_10
        .iter()
        .map(|&c| ranked.column(c).ranks().to_vec())
        .collect();
    let proj_names: Vec<&str> = ncvoter::DEFAULT_10.iter().map(|&c| names[c]).collect();
    let proj = RankedTable::from_u32_columns(cols);
    let result = discover(&proj, &DiscoveryConfig::approximate(0.20));
    println!("\ntop AOCs at ε = 20% (of {} discovered):", result.n_ocs());
    for dep in result.ranked_ocs().into_iter().take(8) {
        println!("  {}", dep.display(&proj_names));
    }
}
